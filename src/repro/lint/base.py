"""Core abstractions of the repo-specific linter.

A :class:`Rule` inspects one parsed module (an :mod:`ast` tree) together
with a :class:`FileContext` describing where the file sits in the repo —
library code under ``src/repro``, test code, CLI entry module — and emits
:class:`Violation` records.  Rules are self-describing: each carries a
stable ``rule_id``, a human rationale, and a pair of fixture snippets
(``violating_example`` / ``clean_example``) that double as executable
documentation and as the positive/negative cases of the rule's tests.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import ClassVar

#: Subpackages whose arithmetic feeds the paper's simulated-cost results;
#: wall-clock reads and float equality are forbidden there (REPRO002/006).
COST_PATH_SUBPACKAGES = frozenset({"core", "bandit", "reid"})

#: Module basenames treated as CLI entry points, exempt from the
#: library-hygiene rule (REPRO004): user-facing output via ``print`` is
#: their job.
CLI_BASENAMES = frozenset({"__main__.py", "cli.py"})


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location.

    Attributes:
        path: the file's display path (as passed to the linter).
        line: 1-based source line.
        col: 0-based source column.
        rule_id: the emitting rule's stable identifier (``REPROxxx``).
        message: human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """Format as a ``path:line:col: RULE message`` diagnostic line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Where a module sits in the repository, as rules care about it.

    Attributes:
        display_path: the path shown in diagnostics.
        module_parts: dotted-module path components relative to the
            ``repro`` package root (``("repro", "core", "tmerge")``), or an
            empty tuple for files outside the library.
        is_test: whether the file lives under ``tests``/``benchmarks`` or
            is named ``test_*.py``/``conftest.py``.
    """

    display_path: str
    module_parts: tuple[str, ...] = ()
    is_test: bool = False

    @property
    def is_library(self) -> bool:
        """True for modules inside the ``repro`` package (library code)."""
        return bool(self.module_parts) and self.module_parts[0] == "repro"

    @property
    def basename(self) -> str:
        """The file's basename (``tmerge.py``)."""
        return PurePosixPath(self.display_path.replace("\\", "/")).name

    @property
    def is_init(self) -> bool:
        """True for package ``__init__.py`` modules."""
        return self.basename == "__init__.py"

    @property
    def is_cli(self) -> bool:
        """True for CLI entry modules (``__main__.py``, ``cli.py``)."""
        return self.basename in CLI_BASENAMES

    @property
    def subpackage(self) -> str | None:
        """The first-level subpackage name (``core`` for
        ``repro.core.tmerge``), or ``None`` outside the library."""
        if self.is_library and len(self.module_parts) >= 2:
            return self.module_parts[1]
        return None

    @property
    def is_cost_path(self) -> bool:
        """True for library modules on the simulated-cost path."""
        return self.subpackage in COST_PATH_SUBPACKAGES


def context_for_path(display_path: str) -> FileContext:
    """Classify ``display_path`` into a :class:`FileContext`.

    The classifier is purely lexical so it works identically on real repo
    files and on synthetic fixture trees: a file is library code when its
    path contains a ``repro`` component that follows a ``src`` component
    (``src/repro/core/tmerge.py``) or leads the relative path
    (``repro/core/tmerge.py``); it is test code when any component is
    ``tests`` or ``benchmarks`` or the basename looks like pytest input.
    """
    parts = PurePosixPath(display_path.replace("\\", "/")).parts
    module_parts: tuple[str, ...] = ()
    for index, part in enumerate(parts):
        if part != "repro":
            continue
        preceded_by_src = index > 0 and parts[index - 1] == "src"
        if preceded_by_src or index == 0:
            module_parts = tuple(parts[index:])
            if module_parts and module_parts[-1].endswith(".py"):
                module_parts = module_parts[:-1] + (module_parts[-1][:-3],)
            break
    basename = parts[-1] if parts else ""
    is_test = (
        any(part in ("tests", "benchmarks") for part in parts[:-1])
        or basename.startswith("test_")
        or basename == "conftest.py"
    )
    return FileContext(
        display_path=display_path,
        module_parts=module_parts,
        is_test=is_test,
    )


class Rule(abc.ABC):
    """One invariant check over a parsed module.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule's scope (library-only rules,
    cost-path-only rules, …) and defaults to library code.
    """

    #: Stable identifier used in diagnostics and ``--select``.
    rule_id: ClassVar[str]
    #: One-line summary shown by ``--list-rules``.
    title: ClassVar[str]
    #: Why the invariant matters for this repo.
    rationale: ClassVar[str]
    #: A minimal snippet the rule must flag (used by the rule's tests).
    violating_example: ClassVar[str]
    #: A minimal snippet the rule must pass (used by the rule's tests).
    clean_example: ClassVar[str]
    #: Virtual path fixtures are linted under; chosen so scoped rules fire.
    example_path: ClassVar[str] = "src/repro/core/example.py"

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on the file described by ``ctx``."""
        return ctx.is_library

    @abc.abstractmethod
    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Return every violation of this rule in ``tree``."""

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` at ``node``'s location."""
        return Violation(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


@dataclass
class LintReport:
    """Aggregate result of one lint run.

    Attributes:
        violations: every violation found, in (path, line, col) order.
        files_checked: how many Python files were parsed.
        parse_errors: ``(path, message)`` for files that failed to parse;
            these fail the run just like violations do.
    """

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run found nothing wrong."""
        return not self.violations and not self.parse_errors
