"""Command-line entry point: ``python -m repro.lint <paths...>``.

Two modes share the executable:

* **per-file** (default) — the REPRO001–010 AST rules over every file;
* **whole-program** (``--flow``) — the REPRO101–106 seam-contract
  analysis of :mod:`repro.lint.flow`, with text or JSON output and the
  committed baseline of known-accepted effects.

Exit status is 0 when clean, 1 when violations (or parse errors, or
non-baselined flow violations) were found, and 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Repo-specific static analysis for the TMerge stack: per-file "
            "AST rules (REPRO001-010) and, with --flow, the whole-program "
            "determinism analysis (REPRO101-106) that proves the parallel "
            "engine's seam contract."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint (default: src tests benchmarks; "
            "with --flow: src)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help=(
            "print every rule and flow diagnostic (id, title, rationale), "
            "then exit"
        ),
    )
    parser.add_argument(
        "--check-docs",
        metavar="DOC",
        help=(
            "with --list-rules: verify DOC names every shipped rule id and "
            "mentions no unknown REPROxxx id (exit 1 on drift)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-violation lines; print only the summary",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the whole-program determinism analysis instead of the "
            "per-file rules"
        ),
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="--flow report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the --flow report (in the chosen format) to PATH",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "flow baseline file of accepted effects "
            "(default: lint-flow-baseline.json when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every violation as new",
    )
    return parser


def _list_rules(check_docs: str | None) -> int:
    """Print the combined rule registry; optionally drift-check a doc."""
    from repro.lint.flow.effects import DIAGNOSTICS_BY_ID

    entries = [
        (rule.rule_id, rule.title, rule.rationale) for rule in ALL_RULES
    ] + [
        (diag.rule_id, diag.title, diag.rationale)
        for diag in sorted(
            DIAGNOSTICS_BY_ID.values(), key=lambda d: d.rule_id
        )
    ]
    for rule_id, title, rationale in entries:
        print(f"{rule_id}  {title}")
        print(f"    {rationale}")
    if check_docs is None:
        return 0
    doc_path = Path(check_docs)
    if not doc_path.is_file():
        print(f"--check-docs: {check_docs} not found", file=sys.stderr)
        return 2
    doc = doc_path.read_text(encoding="utf-8")
    known = {rule_id for rule_id, _, _ in entries}
    mentioned = set(re.findall(r"REPRO\d{3}", doc))
    missing = sorted(known - mentioned)
    unknown = sorted(mentioned - known)
    if missing:
        print(
            f"--check-docs: {check_docs} does not mention shipped rule(s): "
            + ", ".join(missing)
        )
    if unknown:
        print(
            f"--check-docs: {check_docs} mentions unknown rule id(s): "
            + ", ".join(unknown)
        )
    if missing or unknown:
        return 1
    print(f"--check-docs: {check_docs} is in sync ({len(known)} rules)")
    return 0


def _run_flow(args: argparse.Namespace) -> int:
    """The ``--flow`` mode body."""
    from repro.lint.flow import (
        DEFAULT_BASELINE_PATH,
        Baseline,
        FlowAnalysis,
        check_contracts,
        split_by_baseline,
    )

    paths = args.paths if args.paths else ["src"]
    baseline = Baseline()
    baseline_path: str | None = None
    if not args.no_baseline:
        candidate = args.baseline or DEFAULT_BASELINE_PATH
        if Path(candidate).is_file():
            baseline_path = candidate
            baseline = Baseline.load(candidate)
        elif args.baseline is not None:
            print(f"baseline file not found: {candidate}", file=sys.stderr)
            return 2

    analysis = FlowAnalysis.build(paths)
    report = check_contracts(analysis)
    split = split_by_baseline(report.violations, baseline)
    stats = analysis.stats()

    document = {
        "schema": 1,
        "stats": stats,
        "baseline": baseline_path,
        "violations": [
            {**violation.to_dict(), "baselined": False}
            for violation in split.new
        ]
        + [
            {**violation.to_dict(), "baselined": True}
            for violation in split.suppressed
        ],
        "stale_suppressions": split.stale_keys,
        "missing_roots": [
            {"contract": contract, "root": root}
            for contract, root in report.missing_roots
        ],
    }

    if args.output_format == "json":
        rendered = json.dumps(document, indent=2)
    else:
        lines: list[str] = []
        if not args.quiet:
            for violation in split.new:
                lines.append(violation.render())
            for violation in split.suppressed:
                lines.append(f"baselined: {violation.key}")
        for contract, root in report.missing_roots:
            lines.append(
                f"warning: contract `{contract}` root `{root}` not found "
                "in the analyzed code (renamed seam? update the contract)"
            )
        for key in split.stale_keys:
            lines.append(f"warning: stale baseline suppression: {key}")
        lines.append(
            f"flow: {stats['n_modules']} module(s), "
            f"{stats['n_functions']} function(s), "
            f"{stats['n_edges']} edge(s); "
            f"{len(split.new)} new violation(s), "
            f"{len(split.suppressed)} baselined"
        )
        rendered = "\n".join(lines)
    print(rendered)
    if args.output:
        output_path = Path(args.output)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        if args.output_format == "json":
            output_path.write_text(rendered + "\n")
        else:
            output_path.write_text(
                json.dumps(document, indent=2) + "\n"
            )
    return 1 if split.new else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; return the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(args.check_docs)

    if args.flow:
        if args.select:
            parser.error("--select applies to per-file rules, not --flow")
        return _run_flow(args)

    if args.select:
        wanted = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in RULES_BY_ID]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [RULES_BY_ID[rule_id] for rule_id in wanted]
    else:
        rules = list(ALL_RULES)

    report = lint_paths(args.paths or ["src", "tests", "benchmarks"], rules=rules)

    if not args.quiet:
        for path, message in report.parse_errors:
            print(f"{path}: parse error: {message}")
        for violation in report.violations:
            print(violation.render())

    n_problems = len(report.violations) + len(report.parse_errors)
    if n_problems:
        print(
            f"{n_problems} problem(s) in {report.files_checked} file(s) "
            f"({len(rules)} rule(s))"
        )
        return 1
    print(f"clean: {report.files_checked} file(s), {len(rules)} rule(s)")
    return 0
