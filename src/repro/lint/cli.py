"""Command-line entry point: ``python -m repro.lint <paths...>``.

Exit status is 0 when every file is clean, 1 when violations (or parse
errors) were found, and 2 on usage errors such as an unknown rule id.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Repo-specific AST linter enforcing the TMerge stack's "
            "invariants (reproducible randomness, simulated-cost purity, "
            "well-formed public API)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title and rationale, then exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-violation lines; print only the summary",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; return the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    if args.select:
        wanted = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in RULES_BY_ID]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [RULES_BY_ID[rule_id] for rule_id in wanted]
    else:
        rules = list(ALL_RULES)

    report = lint_paths(args.paths, rules=rules)

    if not args.quiet:
        for path, message in report.parse_errors:
            print(f"{path}: parse error: {message}")
        for violation in report.violations:
            print(violation.render())

    n_problems = len(report.violations) + len(report.parse_errors)
    if n_problems:
        print(
            f"{n_problems} problem(s) in {report.files_checked} file(s) "
            f"({len(rules)} rule(s))"
        )
        return 1
    print(f"clean: {report.files_checked} file(s), {len(rules)} rule(s)")
    return 0
