"""The committed baseline of known-accepted effects.

Some effects are *by design*: the Profiler reads the wall clock because
measuring real time is its job (and it is bit-transparent to results);
the checkpoint store's disk mirror is opt-in file IO.  Rather than
allowing whole effect classes, each accepted finding is suppressed
individually in a committed JSON file, keyed by the violation's stable
:attr:`~repro.lint.flow.contract.FlowViolation.key` and carrying a
human rationale — so every exception to the seam contract is enumerated,
reviewed and diff-visible.

The CI job fails on any violation *not* in the baseline.  Stale entries
(keys no longer produced) are reported as warnings so the file shrinks
as code is fixed, instead of accreting dead suppressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.flow.contract import FlowViolation

#: Format version stamped into the baseline file.
BASELINE_SCHEMA = 1

#: Default baseline location, relative to the invocation directory.
DEFAULT_BASELINE_PATH = "lint-flow-baseline.json"


@dataclass
class Baseline:
    """Suppressed violation keys with their rationales."""

    suppressions: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file written by :meth:`write`.

        Raises:
            ValueError: on schema mismatch or entries missing a
                rationale — an unexplained suppression is a bug.
        """
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        schema = int(document.get("schema", 0))
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported flow baseline schema {schema} "
                f"(expected {BASELINE_SCHEMA})"
            )
        suppressions: dict[str, str] = {}
        for entry in document.get("suppressions", []):
            key = entry.get("key")
            rationale = entry.get("rationale")
            if not key or not rationale:
                raise ValueError(
                    "every baseline suppression needs both a `key` and a "
                    f"`rationale` (got {entry!r})"
                )
            suppressions[key] = rationale
        return cls(suppressions=suppressions)

    def write(self, path: str | Path) -> Path:
        """Write the baseline as stable, pretty-printed JSON."""
        path = Path(path)
        document = {
            "schema": BASELINE_SCHEMA,
            "suppressions": [
                {"key": key, "rationale": rationale}
                for key, rationale in sorted(self.suppressions.items())
            ],
        }
        path.write_text(json.dumps(document, indent=2) + "\n")
        return path


@dataclass
class BaselineSplit:
    """Violations partitioned against a baseline.

    Attributes:
        new: violations with no suppression — these fail the run.
        suppressed: baselined violations (reported, never fatal).
        stale_keys: suppression keys no suppressed violation matched —
            candidates for deletion from the baseline file.
    """

    new: list[FlowViolation] = field(default_factory=list)
    suppressed: list[FlowViolation] = field(default_factory=list)
    stale_keys: list[str] = field(default_factory=list)


def split_by_baseline(
    violations: list[FlowViolation], baseline: Baseline
) -> BaselineSplit:
    """Partition ``violations`` into new vs baselined, flag stale keys."""
    split = BaselineSplit()
    used: set[str] = set()
    for violation in violations:
        if violation.key in baseline.suppressions:
            split.suppressed.append(violation)
            used.add(violation.key)
        else:
            split.new.append(violation)
    split.stale_keys = sorted(set(baseline.suppressions) - used)
    return split
