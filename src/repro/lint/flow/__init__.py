"""repro.lint.flow — whole-program determinism analysis.

The per-file rules (REPRO001–010) cannot see across call boundaries: a
``time.time()`` smuggled three calls below
:func:`repro.parallel.executor.run_windows` passes every per-file check
outside the cost-path subpackages.  This package closes that gap with a
stdlib-:mod:`ast` dataflow pass:

1. :mod:`~repro.lint.flow.modules` — module/import graph with re-export
   chasing;
2. :mod:`~repro.lint.flow.callgraph` — per-function direct-effect
   inference (six effect classes, seam exemptions) and conservative
   call-graph extraction;
3. :mod:`~repro.lint.flow.analysis` — fixed-point transitive
   propagation (the kernel, :func:`propagate`, is pure and
   property-tested for monotonicity);
4. :mod:`~repro.lint.flow.contract` — root specs and the checker that
   renders violating paths as readable call chains (REPRO101–106);
5. :mod:`~repro.lint.flow.baseline` — the committed suppression file
   for by-design effects.

Run it with ``python -m repro.lint --flow src`` (text) or
``--flow --format json`` (machine-readable, CI-artifact-friendly).
"""

from repro.lint.flow.analysis import FlowAnalysis, propagate
from repro.lint.flow.baseline import (
    DEFAULT_BASELINE_PATH,
    Baseline,
    BaselineSplit,
    split_by_baseline,
)
from repro.lint.flow.callgraph import FunctionUnit, build_function_index
from repro.lint.flow.contract import (
    DEFAULT_CONTRACTS,
    ContractReport,
    ContractSpec,
    FlowViolation,
    check_contracts,
)
from repro.lint.flow.effects import (
    ALL_EFFECTS,
    DIAGNOSTICS,
    DIAGNOSTICS_BY_ID,
    EffectOrigin,
    FlowDiagnostic,
)
from repro.lint.flow.modules import ModuleGraph, ModuleInfo

__all__ = [
    "FlowAnalysis",
    "propagate",
    "DEFAULT_BASELINE_PATH",
    "Baseline",
    "BaselineSplit",
    "split_by_baseline",
    "FunctionUnit",
    "build_function_index",
    "DEFAULT_CONTRACTS",
    "ContractReport",
    "ContractSpec",
    "FlowViolation",
    "check_contracts",
    "ALL_EFFECTS",
    "DIAGNOSTICS",
    "DIAGNOSTICS_BY_ID",
    "EffectOrigin",
    "FlowDiagnostic",
    "ModuleGraph",
    "ModuleInfo",
]
