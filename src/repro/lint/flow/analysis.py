"""Fixed-point effect propagation over the call graph.

:func:`propagate` is the analysis kernel, kept deliberately abstract —
a dictionary of direct effect sets and a dictionary of edges in, the
least fixed point out.  Abstractness buys two things: the hypothesis
property tests can drive it with arbitrary generated graphs (adding an
edge must never *remove* inferred effects — monotonicity), and the
worklist has no knowledge of Python, files or seams to get wrong.

:class:`FlowAnalysis` binds the kernel to a real
:class:`~repro.lint.flow.modules.ModuleGraph`: it owns the function
index, the per-function transitive effect sets, and shortest-chain
reconstruction for diagnostics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint.flow.callgraph import FunctionUnit, build_function_index
from repro.lint.flow.effects import EffectOrigin
from repro.lint.flow.modules import ModuleGraph


def propagate(
    direct: Mapping[str, frozenset[str]],
    edges: Mapping[str, Iterable[str]],
) -> dict[str, frozenset[str]]:
    """Least fixed point of ``effects(f) = direct(f) ∪ ⋃ effects(callee)``.

    Nodes appearing only in ``edges`` (as sources or targets) start from
    the empty effect set.  The worklist iterates until stable; the
    lattice (powersets of a finite effect alphabet, ordered by ⊆) is
    finite and the transfer function monotone, so termination is
    guaranteed and the result is edge-monotone: adding an edge can only
    grow (never shrink) any node's inferred set — the property
    ``tests/test_lint_flow.py`` checks with hypothesis.
    """
    nodes: set[str] = set(direct)
    for source, targets in edges.items():
        nodes.add(source)
        nodes.update(targets)
    effects: dict[str, frozenset[str]] = {
        node: frozenset(direct.get(node, frozenset())) for node in nodes
    }
    callers: dict[str, set[str]] = {node: set() for node in nodes}
    callees: dict[str, set[str]] = {node: set() for node in nodes}
    for source, targets in edges.items():
        for target in targets:
            callers[target].add(source)
            callees[source].add(target)
    worklist = deque(nodes)
    queued = set(worklist)
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        combined = effects[node]
        for callee in callees[node]:
            combined |= effects[callee]
        if combined != effects[node]:
            effects[node] = combined
            for caller in callers[node]:
                if caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return effects


@dataclass
class FlowAnalysis:
    """The whole-program analysis of one set of paths.

    Attributes:
        graph: the parsed module graph.
        functions: qualname → :class:`~repro.lint.flow.callgraph.FunctionUnit`.
        effects: qualname → transitively inferred effect set.
    """

    graph: ModuleGraph
    functions: dict[str, FunctionUnit]
    effects: dict[str, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, paths: Iterable[str | Path]) -> "FlowAnalysis":
        """Parse, scan and solve the fixed point for ``paths``."""
        graph = ModuleGraph.build(paths)
        functions = build_function_index(graph)
        direct = {
            name: frozenset(
                origin.effect for origin in unit.direct_effects
            )
            for name, unit in functions.items()
        }
        edges = {name: unit.callees for name, unit in functions.items()}
        analysis = cls(graph=graph, functions=functions)
        analysis.effects = propagate(direct, edges)
        return analysis

    def effects_of(self, qualname: str) -> frozenset[str]:
        """The transitive effect set of ``qualname`` (empty if unknown)."""
        return self.effects.get(qualname, frozenset())

    def reachable_from(self, root: str) -> set[str]:
        """Every function reachable from ``root`` (``root`` included)."""
        if root not in self.functions:
            return set()
        seen = {root}
        frontier = deque([root])
        while frontier:
            current = frontier.popleft()
            for callee in self.functions[current].callees:
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def shortest_chain(self, root: str, target: str) -> list[str] | None:
        """Shortest call chain ``root → … → target``, or ``None``.

        BFS with callees visited in sorted order, so the reported chain
        is deterministic across runs and machines.
        """
        if root not in self.functions:
            return None
        parents: dict[str, str | None] = {root: None}
        frontier = deque([root])
        while frontier:
            current = frontier.popleft()
            if current == target:
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])
                return list(reversed(chain))
            for callee in sorted(self.functions[current].callees):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return None

    def stats(self) -> dict[str, int]:
        """Coarse size counters for reporting and the runtime bench."""
        return {
            "n_modules": len(self.graph.modules),
            "n_functions": len(self.functions),
            "n_edges": sum(
                len(unit.callees) for unit in self.functions.values()
            ),
            "n_unresolved_calls": sum(
                len(unit.unresolved) for unit in self.functions.values()
            ),
            "n_effectful_functions": sum(
                1 for effects in self.effects.values() if effects
            ),
        }
