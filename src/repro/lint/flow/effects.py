"""The effect lattice of the whole-program determinism analysis.

An *effect* is one way a function can break the parallel engine's seam
contract — the guarantee that a window's result is a pure function of
``(seed, window index)``.  Effects form a flat powerset lattice: a
function's inferred effect set is the union of its own *direct* effects
and (transitively) those of every callee the call-graph can resolve.
The fixed point over that lattice is computed by
:func:`repro.lint.flow.analysis.propagate`.

Each effect maps to one stable ``REPRO1xx`` diagnostic code, the
whole-program counterpart of the per-file ``REPRO0xx`` rules:
where REPRO001 flags an ambient RNG *at the line that draws*, REPRO102
flags a contract root that can *reach* an RNG construction through any
number of calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Reading the machine's wall clock (``time.time`` and friends).
WALL_CLOCK = "WALL_CLOCK"
#: Constructing a Generator / drawing ambient randomness rather than
#: receiving an injected stream.
RNG_CREATE = "RNG_CREATE"
#: Rebinding or mutating module-level state.
GLOBAL_MUTATE = "GLOBAL_MUTATE"
#: Reading process environment variables.
ENV_READ = "ENV_READ"
#: Touching the filesystem.
FILE_IO = "FILE_IO"
#: Iterating a set, whose order depends on ``PYTHONHASHSEED`` across
#: worker processes.
UNORDERED_ITER = "UNORDERED_ITER"

#: Every effect, in diagnostic-code order.
ALL_EFFECTS = (
    WALL_CLOCK,
    RNG_CREATE,
    GLOBAL_MUTATE,
    ENV_READ,
    FILE_IO,
    UNORDERED_ITER,
)


@dataclass(frozen=True)
class FlowDiagnostic:
    """The self-describing metadata of one ``REPRO1xx`` diagnostic.

    Attributes:
        rule_id: stable identifier (``REPRO101`` …).
        effect: the effect this diagnostic reports.
        title: one-line summary shown by ``--list-rules``.
        rationale: why the effect breaks the seam contract, and which
            declared seam to use instead.
    """

    rule_id: str
    effect: str
    title: str
    rationale: str


#: Diagnostic registry, keyed by effect name.
DIAGNOSTICS: dict[str, FlowDiagnostic] = {
    diag.effect: diag
    for diag in (
        FlowDiagnostic(
            rule_id="REPRO101",
            effect=WALL_CLOCK,
            title="no wall-clock reads reachable from a seam root",
            rationale=(
                "A `time.time()`/`perf_counter()` anywhere below a "
                "parallel-engine root makes window results depend on the "
                "machine, not on (seed, window index).  Charge the "
                "injected `CostModel` clock instead (REPRO002 is the "
                "per-file half of this check)."
            ),
        ),
        FlowDiagnostic(
            rule_id="REPRO102",
            effect=RNG_CREATE,
            title="no ambient RNG construction reachable from a seam root",
            rationale=(
                "Constructing `default_rng()` without an injected seed "
                "(or drawing from numpy's global RNG) below a root "
                "desynchronizes workers; accept a `np.random.Generator` "
                "or a `SeedSequence` substream parameter instead "
                "(REPRO001 is the per-file half of this check)."
            ),
        ),
        FlowDiagnostic(
            rule_id="REPRO103",
            effect=GLOBAL_MUTATE,
            title="no module-state mutation reachable from a seam root",
            rationale=(
                "Writes to module-level state below a root are shared "
                "between windows in thread pools and silently dropped in "
                "process pools — either way results stop being a pure "
                "function of (seed, window index).  Keep per-window "
                "state on window-local objects."
            ),
        ),
        FlowDiagnostic(
            rule_id="REPRO104",
            effect=ENV_READ,
            title="no environment reads reachable from a seam root",
            rationale=(
                "`os.environ` below a root lets deployment configuration "
                "change window results; read configuration once in the "
                "run owner and inject it through constructors."
            ),
        ),
        FlowDiagnostic(
            rule_id="REPRO105",
            effect=FILE_IO,
            title="no filesystem access reachable from a seam root",
            rationale=(
                "File reads below a root couple results to on-disk state; "
                "file writes from workers race each other.  Load inputs in "
                "the run owner; durable outputs belong to the driver."
            ),
        ),
        FlowDiagnostic(
            rule_id="REPRO106",
            effect=UNORDERED_ITER,
            title="no set-order-dependent iteration reachable from a seam root",
            rationale=(
                "Set iteration order depends on PYTHONHASHSEED, which "
                "differs between pool workers; iterating a set below a "
                "root can leak that order into returned values.  Sort "
                "before iterating (`sorted(the_set)`)."
            ),
        ),
    )
}

#: Diagnostic registry keyed by rule id (``REPRO101`` → diagnostic).
DIAGNOSTICS_BY_ID: dict[str, FlowDiagnostic] = {
    diag.rule_id: diag for diag in DIAGNOSTICS.values()
}


@dataclass(frozen=True)
class EffectOrigin:
    """One concrete source location where a direct effect arises.

    Attributes:
        effect: the effect class (one of :data:`ALL_EFFECTS`).
        path: display path of the file containing the effectful code.
        line: 1-based line of the effectful expression.
        col: 0-based column.
        detail: the primitive that causes the effect, rendered the way a
            reader would write it (``time.perf_counter``, ``os.environ``,
            ``iter(set)``, ``open``), shown as the final link of the
            reported call chain.
    """

    effect: str
    path: str
    line: int
    col: int
    detail: str


def effect_union(sets: Iterable[frozenset[str]]) -> frozenset[str]:
    """The join (set union) of several effect sets."""
    out: frozenset[str] = frozenset()
    for one in sets:
        out |= one
    return out
