"""Module and import graph for the whole-program analysis.

Parses every Python file under the analyzed paths into a
:class:`ModuleInfo`: the module's dotted name (derived lexically from its
path, exactly like :func:`repro.lint.base.context_for_path`), its import
table (local name → fully qualified target), its module-level functions,
its classes (methods, bases, attribute types) and its module-level
bindings.  The :class:`ModuleGraph` then resolves dotted names across
modules, chasing ``__init__`` re-exports, so a call through
``from repro.reid import CostModel`` lands on
``repro.reid.cost.CostModel`` like the import system would.

Everything here is conservative and purely lexical: a name the graph
cannot resolve stays unresolved (the call-graph layer counts it and
infers nothing for it) rather than guessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.base import context_for_path
from repro.lint.engine import display_path, iter_python_files


@dataclass
class ClassInfo:
    """One class definition as the analysis sees it.

    Attributes:
        qualname: fully qualified name (``repro.core.tmerge.TMerge``).
        bases: base-class expressions as dotted strings (unresolved).
        methods: method name → the method's ``ast`` node.
        properties: names of ``@property``-decorated methods.
        attr_types: instance attribute name → candidate type names as
            written (annotations from the class body and ``self.x``
            assignments in ``__init__``); resolved lazily by the graph.
    """

    qualname: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    properties: set[str] = field(default_factory=set)
    attr_types: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module.

    Attributes:
        name: dotted module name (``repro.parallel.executor``).
        path: display path used in diagnostics.
        tree: the parsed AST.
        imports: local name → fully qualified target; module imports map
            the binding (``np`` → ``numpy``), from-imports map the name
            (``TrackPair`` → ``repro.core.pairs.TrackPair``).
        functions: module-level function name → node.
        classes: class name → :class:`ClassInfo`.
        bindings: every name bound at module level (imports, defs,
            assignments).
        mutable_bindings: module-level names bound to an obviously
            mutable value (list/dict/set displays or constructor calls)
            — the state REPRO103 guards.
    """

    name: str
    path: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    bindings: set[str] = field(default_factory=set)
    mutable_bindings: set[str] = field(default_factory=set)

    @property
    def package(self) -> str:
        """The module's parent package (``repro.parallel``)."""
        return self.name.rpartition(".")[0]


def module_name_for_path(path: str) -> str | None:
    """Dotted module name for a ``repro``-rooted path, else ``None``.

    ``src/repro/core/tmerge.py`` → ``repro.core.tmerge``;
    ``__init__.py`` modules name their package.
    """
    ctx = context_for_path(path)
    if not ctx.is_library:
        return None
    parts = list(ctx.module_parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_names(node: ast.AST | None) -> list[str]:
    """Candidate type names written in an annotation expression.

    Handles ``X``, ``a.b.X``, ``X | Y`` unions, ``Optional[X]`` /
    ``Union[X, Y]`` / ``list[X]``-style subscripts (the head *and* the
    arguments are offered — the resolver keeps whichever resolve to
    classes), and string annotations.  Unknown shapes yield nothing.
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return []
            return annotation_names(parsed.body)
        return []
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        return [name] if name else []
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return annotation_names(node.left) + annotation_names(node.right)
    if isinstance(node, ast.Subscript):
        names = annotation_names(node.value)
        inner = node.slice
        elements = (
            list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
        )
        for element in elements:
            names.extend(annotation_names(element))
        return names
    return []


_MUTABLE_VALUE_CALLS = frozenset({"list", "dict", "set", "OrderedDict"})


def _is_mutable_value(node: ast.AST) -> bool:
    """Whether a module-level assignment value is an obviously mutable
    container (the state whose mutation REPRO103 reports)."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_VALUE_CALLS
    return False


def _record_imports(module: ModuleInfo) -> None:
    """Populate the import table from every import statement in the
    module (function-local imports included — a harmless
    over-approximation that lets `import time` inside a helper resolve)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None and node.level == 0:
                continue
            if node.level > 0:
                # Relative import: resolve against this module's package.
                base_parts = module.name.split(".")
                # level 1 = current package; each extra level pops one.
                if module.path.endswith("__init__.py"):
                    base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                else:
                    base_parts = base_parts[: len(base_parts) - node.level]
                base = ".".join(base_parts)
                target_module = (
                    f"{base}.{node.module}" if node.module else base
                )
            else:
                target_module = node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports[bound] = f"{target_module}.{alias.name}"


def _attr_types_from_init(
    info: ClassInfo, init: ast.FunctionDef | ast.AsyncFunctionDef
) -> None:
    """Record ``self.x = ...`` attribute types visible in ``__init__``.

    Two shapes are understood: ``self.x = ClassName(...)`` (the attribute
    is that class) and ``self.x = param`` (the attribute carries the
    parameter's annotation).  Anything else leaves the attribute untyped.
    """
    params = {
        arg.arg: arg.annotation
        for arg in (
            list(init.args.posonlyargs)
            + list(init.args.args)
            + list(init.args.kwonlyargs)
        )
    }
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            names: list[str] = []
            if isinstance(node, ast.AnnAssign):
                names.extend(annotation_names(node.annotation))
            if isinstance(value, ast.Call):
                called = dotted_name(value.func)
                if called:
                    names.append(called)
            elif isinstance(value, ast.Name) and value.id in params:
                names.extend(annotation_names(params[value.id]))
            if names:
                bucket = info.attr_types.setdefault(target.attr, [])
                for name in names:
                    if name not in bucket:
                        bucket.append(name)


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = dotted_name(decorator)
        if name in ("property", "functools.cached_property", "cached_property"):
            return True
    return False


def parse_module(path: Path, shown: str) -> ModuleInfo | None:
    """Parse one file into a :class:`ModuleInfo` (``None`` outside the
    ``repro`` package or on syntax errors — the per-file linter already
    reports those)."""
    name = module_name_for_path(shown)
    if name is None:
        return None
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=shown)
    except (SyntaxError, UnicodeDecodeError):
        return None
    module = ModuleInfo(name=name, path=shown, tree=tree)
    _record_imports(module)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = stmt
            module.bindings.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            info = ClassInfo(qualname=f"{name}.{stmt.name}")
            for base in stmt.bases:
                base_name = dotted_name(base)
                if base_name:
                    info.bases.append(base_name)
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[member.name] = member
                    if _is_property(member):
                        info.properties.add(member.name)
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    info.attr_types[member.target.id] = annotation_names(
                        member.annotation
                    )
            init = info.methods.get("__init__")
            if init is not None:
                _attr_types_from_init(info, init)
            module.classes[stmt.name] = info
            module.bindings.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        module.bindings.add(node.id)
                        if _is_mutable_value(stmt.value):
                            module.mutable_bindings.add(node.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            module.bindings.add(stmt.target.id)
            if stmt.value is not None and _is_mutable_value(stmt.value):
                module.mutable_bindings.add(stmt.target.id)
    module.bindings.update(module.imports)
    return module


class ModuleGraph:
    """Every parsed module, with cross-module name resolution.

    The resolver chases re-exports: resolving ``repro.reid.CostModel``
    finds ``repro.reid``'s ``from repro.reid.cost import CostModel`` and
    lands on the defining module — mirroring runtime import semantics
    without executing anything.
    """

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {
            module.name: module for module in modules
        }

    @classmethod
    def build(cls, paths: Iterable[str | Path]) -> "ModuleGraph":
        """Parse every ``repro`` module under ``paths``."""
        modules = []
        for path in iter_python_files(paths):
            module = parse_module(Path(path), display_path(Path(path)))
            if module is not None:
                modules.append(module)
        return cls(modules)

    def resolve(
        self, qualified: str, _depth: int = 0
    ) -> tuple[ModuleInfo, str] | None:
        """Resolve a fully qualified name to ``(defining module, local name)``.

        Returns ``None`` for names outside the analyzed modules (numpy,
        the stdlib, …) or names that simply do not exist.  Chases up to
        eight levels of ``__init__`` re-export indirection.
        """
        if _depth > 8:
            return None
        module_name, _, local = qualified.rpartition(".")
        if not module_name:
            return None
        module = self.modules.get(module_name)
        if module is None:
            # The "module" part may itself be a re-exported name
            # (repro.reid.CostModel.state_dict-style chains are handled
            # by the caller; here we only accept module.local shapes).
            return None
        if local in module.functions or local in module.classes:
            return module, local
        target = module.imports.get(local)
        if target is not None:
            return self.resolve(target, _depth + 1)
        if local in module.bindings:
            return module, local
        return None

    def resolve_class(self, qualified: str) -> ClassInfo | None:
        """Resolve a qualified name to a :class:`ClassInfo`, or ``None``."""
        resolved = self.resolve(qualified)
        if resolved is None:
            return None
        module, local = resolved
        return module.classes.get(local)

    def resolve_in_module(
        self, module: ModuleInfo, name: str
    ) -> tuple[ModuleInfo, str] | None:
        """Resolve a dotted name as written inside ``module``.

        ``name`` may be a bare local (``build_track_pairs``), an imported
        name (``TrackPair``), or a dotted chain through an imported
        module (``contracts.check_shard_cover``).
        """
        head, _, rest = name.partition(".")
        if head in module.functions or head in module.classes:
            base: str | None = f"{module.name}.{head}"
        else:
            base = module.imports.get(head)
        if base is None:
            return None
        full = f"{base}.{rest}" if rest else base
        resolved = self.resolve(full)
        if resolved is not None:
            return resolved
        # ``full`` may itself be a module (``import repro.contracts``).
        target = self.modules.get(full)
        if target is not None:
            return target, ""
        return None

    def method_of(
        self, info: ClassInfo, method: str, _depth: int = 0
    ) -> tuple[ClassInfo, str] | None:
        """Find ``method`` on ``info`` or its resolvable base classes."""
        if method in info.methods:
            return info, method
        if _depth > 8:
            return None
        module_name = info.qualname.rpartition(".")[0]
        module = self.modules.get(module_name)
        for base in info.bases:
            base_info = None
            if module is not None:
                resolved = self.resolve_in_module(module, base)
                if resolved is not None:
                    base_module, local = resolved
                    base_info = base_module.classes.get(local)
            if base_info is not None:
                found = self.method_of(base_info, method, _depth + 1)
                if found is not None:
                    return found
        return None
