"""Per-function effect inference and call-graph extraction.

For every module-level function and every method in the
:class:`~repro.lint.flow.modules.ModuleGraph`, a single AST pass infers:

* **direct effects** — concrete :class:`~repro.lint.flow.effects.EffectOrigin`
  records for wall-clock reads, ambient RNG construction, module-state
  mutation, environment reads, file IO and set-order-dependent
  iteration arising in the function's own body (nested functions and
  lambdas fold into their enclosing function: they may run whenever it
  does);
* **call edges** — callees the resolver can name: local and imported
  functions, constructors, methods on receivers typed from parameter
  annotations, constructor sites, ``self`` attribute types and resolvable
  return annotations, plus ``@decorator`` applications and property
  accesses on typed receivers.

Resolution is deliberately conservative: a callee the resolver cannot
type contributes **no** effects (it is merely counted as unresolved).
The analysis therefore under-approximates across dynamic dispatch —
DESIGN.md §11 spells out the soundness trade, and the contract layer
compensates by rooting the check at the concrete implementations
(``TMerge.run`` itself, not just the ``Merger`` protocol).

Seam exemptions are applied here, at the origin: constructing
``default_rng(x)`` is *not* an effect when ``x`` derives from a local
name (an injected seed, a ``SeedSequence`` substream, ``self.seed``) —
only unseeded or constant-seeded construction is ambient.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.effects import (
    ENV_READ,
    FILE_IO,
    GLOBAL_MUTATE,
    RNG_CREATE,
    UNORDERED_ITER,
    WALL_CLOCK,
    EffectOrigin,
)
from repro.lint.flow.modules import (
    ClassInfo,
    ModuleGraph,
    ModuleInfo,
    annotation_names,
    dotted_name,
)
from repro.lint.rules import ALLOWED_NP_RANDOM, WALL_CLOCK_FUNCTIONS

#: Wall-clock constructors on the stdlib ``datetime`` module.
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: ``os`` functions that touch the filesystem.
_OS_FILE_FUNCTIONS = frozenset(
    {
        "remove",
        "unlink",
        "rename",
        "replace",
        "mkdir",
        "makedirs",
        "rmdir",
        "removedirs",
        "listdir",
        "scandir",
        "walk",
        "stat",
    }
)

#: Method names that are file IO on any receiver (``Path`` idioms).
_PATH_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "update",
        "setdefault",
        "popitem",
        "add",
        "discard",
        "sort",
    }
)

#: Set methods whose result is itself a set.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Annotation heads that type a parameter as a set.
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Builtins never counted as unresolved calls.
_KNOWN_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "bytearray", "callable",
        "dict", "divmod", "enumerate", "filter", "float", "format",
        "frozenset", "getattr", "hasattr", "hash", "id", "int",
        "isinstance", "issubclass", "iter", "len", "list", "map", "max",
        "min", "next", "object", "open", "pow", "print", "range", "repr",
        "reversed", "round", "set", "setattr", "sorted", "str", "sum",
        "super", "tuple", "type", "vars", "zip",
    }
)


@dataclass
class FunctionUnit:
    """One analyzed function (or method) and what the pass inferred.

    Attributes:
        qualname: fully qualified name
            (``repro.core.tmerge.TMerge.run``).
        path: display path of the defining file.
        line: 1-based line of the ``def``.
        direct_effects: effect origins arising in this function's body.
        callees: resolved callee qualnames (edges of the call graph).
        unresolved: dotted call expressions the resolver could not type.
        is_stub: ``...``-only protocol/overload body.
    """

    qualname: str
    path: str
    line: int
    direct_effects: list[EffectOrigin] = field(default_factory=list)
    callees: set[str] = field(default_factory=set)
    unresolved: list[str] = field(default_factory=list)
    is_stub: bool = False


def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    body = [
        stmt
        for stmt in node.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        )
    ]
    return len(body) == 1 and (
        isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def _binding_names(target: ast.AST) -> set[str]:
    """Names an assignment target actually binds.

    ``x``, ``x, y = …``, ``[x, *rest] = …`` bind; ``obj.attr = …`` and
    ``table[k] = …`` do *not* bind ``obj``/``table`` (they mutate an
    existing object — exactly the stores REPRO103 must still see)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= _binding_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return set()


def _bound_local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name bound anywhere inside ``fn`` (nested scopes folded in),
    excluding names the function declares ``global``."""
    names: set[str] = set()
    globals_: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            ):
                names.add(arg.arg)
            if node.args.vararg:
                names.add(node.args.vararg.arg)
            if node.args.kwarg:
                names.add(node.args.kwarg.arg)
            names.add(node.name)
        elif isinstance(node, ast.Lambda):
            for arg in node.args.args:
                names.add(arg.arg)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                names |= _binding_names(target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names |= _binding_names(node.target)
        elif isinstance(node, ast.comprehension):
            names |= _binding_names(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names |= _binding_names(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.Global):
            globals_.update(node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names - globals_


class _FunctionScanner:
    """One function's effect + edge extraction pass."""

    def __init__(
        self,
        graph: ModuleGraph,
        module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ClassInfo | None,
    ) -> None:
        self.graph = graph
        self.module = module
        self.fn = fn
        self.owner = owner
        self.effects: list[EffectOrigin] = []
        self.callees: set[str] = set()
        self.unresolved: list[str] = []
        self._seen_origins: set[tuple[str, int, str]] = set()
        self.locals = _bound_local_names(fn)
        self.param_types: dict[str, list[ClassInfo]] = {}
        for arg in (
            list(fn.args.posonlyargs)
            + list(fn.args.args)
            + list(fn.args.kwonlyargs)
        ):
            classes = self._classes_for_names(
                annotation_names(arg.annotation), self.module
            )
            if classes:
                self.param_types[arg.arg] = classes
        self.var_types: dict[str, list[ClassInfo]] = {}
        self.set_vars: set[str] = set()
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            heads = [
                name.split(".")[-1].split("[")[0]
                for name in annotation_names(arg.annotation)
            ]
            if any(head in _SET_ANNOTATIONS for head in heads):
                self.set_vars.add(arg.arg)

    # ---------------------------------------------------------- helpers

    def _classes_for_names(
        self, names: list[str], module: ModuleInfo
    ) -> list[ClassInfo]:
        classes: list[ClassInfo] = []
        for name in names:
            resolved = self.graph.resolve_in_module(module, name)
            if resolved is None:
                continue
            target_module, local = resolved
            info = target_module.classes.get(local)
            if info is not None and info not in classes:
                classes.append(info)
        return classes

    def _module_of(self, info: ClassInfo) -> ModuleInfo | None:
        return self.graph.modules.get(info.qualname.rpartition(".")[0])

    def _expanded(self, chain: str) -> str | None:
        """Expand a dotted chain's head through the import table.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when
        ``np`` is bound by ``import numpy as np``.  Returns ``None``
        when the head is a local name (not an import)."""
        head, _, rest = chain.partition(".")
        if head in self.locals:
            return None
        target = self.module.imports.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def _origin(self, effect: str, node: ast.AST, detail: str) -> None:
        key = (effect, getattr(node, "lineno", 0), detail)
        if key in self._seen_origins:
            return
        self._seen_origins.add(key)
        self.effects.append(
            EffectOrigin(
                effect=effect,
                path=self.module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                detail=detail,
            )
        )

    def _add_edge_for(self, module: ModuleInfo, local: str) -> bool:
        """Edge to a resolved (module, local) function or constructor."""
        if local in module.functions:
            self.callees.add(f"{module.name}.{local}")
            return True
        info = module.classes.get(local)
        if info is not None:
            if "__init__" in info.methods:
                self.callees.add(f"{info.qualname}.__init__")
            if "__post_init__" in info.methods:
                self.callees.add(f"{info.qualname}.__post_init__")
            return True
        return False

    # ------------------------------------------------------- type model

    def types_of(self, expr: ast.expr, _depth: int = 0) -> list[ClassInfo]:
        """Candidate classes an expression evaluates to (may be empty)."""
        if _depth > 6:
            return []
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.owner is not None:
                return [self.owner]
            if expr.id in self.param_types:
                return self.param_types[expr.id]
            if expr.id in self.var_types:
                return self.var_types[expr.id]
            if expr.id not in self.locals:
                resolved = self.graph.resolve_in_module(self.module, expr.id)
                if resolved is not None:
                    module, local = resolved
                    info = module.classes.get(local)
                    # A bare class name is the class itself, not an
                    # instance; method calls on it still dispatch there.
                    if info is not None:
                        return [info]
            return []
        if isinstance(expr, ast.Attribute):
            bases = self.types_of(expr.value, _depth + 1)
            found: list[ClassInfo] = []
            for base in bases:
                names = base.attr_types.get(expr.attr)
                if not names:
                    continue
                module = self._module_of(base)
                if module is None:
                    continue
                for info in self._classes_for_names(names, module):
                    if info not in found:
                        found.append(info)
            return found
        if isinstance(expr, ast.Call):
            return self._return_types_of_call(expr, _depth)
        return []

    def _return_types_of_call(
        self, call: ast.Call, _depth: int = 0
    ) -> list[ClassInfo]:
        """Types produced by a call: the class for constructors, the
        resolved return annotation for functions and methods."""
        func = call.func
        if isinstance(func, ast.Name) and func.id not in self.locals:
            resolved = self.graph.resolve_in_module(self.module, func.id)
            if resolved is not None:
                module, local = resolved
                info = module.classes.get(local)
                if info is not None:
                    return [info]
                fn = module.functions.get(local)
                if fn is not None:
                    return self._classes_for_names(
                        annotation_names(fn.returns), module
                    )
        elif isinstance(func, ast.Attribute):
            for owner, name in self._resolve_method_targets(func, _depth):
                method = owner.methods.get(name)
                if method is None:
                    continue
                module = self._module_of(owner)
                if module is None:
                    continue
                return self._classes_for_names(
                    annotation_names(method.returns), module
                )
            chain = dotted_name(func)
            if chain is not None:
                resolved_mod = self.graph.resolve_in_module(self.module, chain)
                if resolved_mod is not None:
                    module, local = resolved_mod
                    info = module.classes.get(local)
                    if info is not None:
                        return [info]
        return []

    def _resolve_method_targets(
        self, func: ast.Attribute, _depth: int = 0
    ) -> list[tuple[ClassInfo, str]]:
        """``(defining class, method name)`` candidates for ``recv.m``."""
        targets: list[tuple[ClassInfo, str]] = []
        for info in self.types_of(func.value, _depth + 1):
            found = self.graph.method_of(info, func.attr)
            if found is not None and found not in targets:
                targets.append(found)
        return targets

    # ---------------------------------------------------- effect checks

    def _args_all_constant(self, call: ast.Call) -> bool:
        """True when no argument expression mentions a local name — the
        seam test: a seed that flows in through a parameter (or ``self``)
        exempts the construction."""
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id in self.locals:
                    return False
        return True

    def _check_call_effects(self, node: ast.Call) -> None:
        func = node.func
        chain = dotted_name(func)
        expanded = self._expanded(chain) if chain else None
        # --- builtin open -------------------------------------------------
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and "open" not in self.locals
            and "open" not in self.module.imports
        ):
            self._origin(FILE_IO, node, "open")
            return
        if expanded is not None:
            parts = expanded.split(".")
            head, last = parts[0], parts[-1]
            # --- wall clock ----------------------------------------------
            if head == "time" and last in WALL_CLOCK_FUNCTIONS:
                self._origin(WALL_CLOCK, node, f"time.{last}")
                return
            if head == "datetime" and last in _DATETIME_NOW:
                self._origin(WALL_CLOCK, node, f"datetime.{last}")
                return
            # --- ambient randomness --------------------------------------
            if head == "random":
                self._origin(RNG_CREATE, node, f"random.{last}")
                return
            if head == "numpy" and len(parts) >= 2 and parts[1] == "random":
                if last in ("default_rng", "Generator"):
                    if self._args_all_constant(node):
                        suffix = "()" if not node.args and not node.keywords else "(<constant seed>)"
                        self._origin(
                            RNG_CREATE, node, f"np.random.{last}{suffix}"
                        )
                    return
                if last not in ALLOWED_NP_RANDOM:
                    self._origin(RNG_CREATE, node, f"np.random.{last}")
                    return
            # --- environment ---------------------------------------------
            if expanded in ("os.getenv", "os.environ.get"):
                self._origin(ENV_READ, node, "os.environ")
                return
            # --- file IO -------------------------------------------------
            if head == "os" and last in _OS_FILE_FUNCTIONS:
                self._origin(FILE_IO, node, f"os.{last}")
                return
            if head == "os" and len(parts) >= 2 and parts[1] == "path":
                self._origin(FILE_IO, node, expanded)
                return
            if head == "shutil":
                self._origin(FILE_IO, node, f"shutil.{last}")
                return
        # --- Path-style IO methods on any receiver -----------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _PATH_IO_METHODS
        ):
            self._origin(FILE_IO, node, f".{func.attr}()")
            return
        # --- mutating method on module-level state -----------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
        ):
            state = self._module_state_name(func.value.id)
            if state is not None:
                self._origin(
                    GLOBAL_MUTATE, node, f"{state}.{func.attr}(...)"
                )

    def _module_state_name(self, name: str) -> str | None:
        """``name`` rendered as module state when it is one, else ``None``.

        Module state means: a non-callable binding at the top level of
        this module (only obviously-mutable ones count for method-call
        mutation), or an imported binding that resolves to a top-level
        assignment in another analyzed module."""
        if name in self.locals:
            return None
        if name in self.module.mutable_bindings:
            return name
        if name in self.module.functions or name in self.module.classes:
            return None
        target = self.module.imports.get(name)
        if target is None:
            return None
        resolved = self.graph.resolve(target)
        if resolved is None:
            return None
        module, local = resolved
        if local in module.mutable_bindings:
            return f"{module.name}.{local}"
        return None

    def _check_store_target(self, node: ast.AST) -> None:
        """Flag stores through module-level state (``STATE[k] = v``,
        ``STATE.attr = v``, ``SomeClass.attr = v``)."""
        target = node
        while isinstance(target, (ast.Attribute, ast.Subscript)):
            target = target.value
        if not isinstance(target, ast.Name) or target is node:
            return
        name = target.id
        if name in self.locals:
            return
        if name in self.module.bindings and name not in self.module.functions:
            info = self.module.classes.get(name)
            label = f"{name} (class attribute)" if info else name
            self._origin(GLOBAL_MUTATE, node, f"{label} store")
            return
        chained = self.graph.resolve_in_module(self.module, name)
        if chained is not None:
            module, local = chained
            if local and local not in module.functions:
                if local in module.classes:
                    self._origin(
                        GLOBAL_MUTATE,
                        node,
                        f"{module.name}.{local} (class attribute) store",
                    )
                elif local in module.bindings:
                    self._origin(
                        GLOBAL_MUTATE, node, f"{module.name}.{local} store"
                    )

    def _is_set_expr(self, expr: ast.expr, _depth: int = 0) -> bool:
        if _depth > 6:
            return False
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.set_vars
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("set", "frozenset")
                and func.id not in self.locals
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
            ):
                return True
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(expr.left, _depth + 1) or self._is_set_expr(
                expr.right, _depth + 1
            )
        return False

    def _check_iteration(self, iterable: ast.expr, node: ast.AST) -> None:
        if self._is_set_expr(iterable):
            self._origin(UNORDERED_ITER, node, "iter(set)")

    # ------------------------------------------------------ edge checks

    def _record_call_edges(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.locals or name in _KNOWN_BUILTINS:
                return
            resolved = self.graph.resolve_in_module(self.module, name)
            if resolved is not None:
                module, local = resolved
                if self._add_edge_for(module, local):
                    return
                return  # resolved to a module-level binding: no edge
            if name in self.module.imports:
                return  # external (numpy, stdlib) — effects handled above
            self.unresolved.append(name)
            return
        if isinstance(func, ast.Attribute):
            targets = self._resolve_method_targets(func)
            if targets:
                for owner, method in targets:
                    self.callees.add(f"{owner.qualname}.{method}")
                return
            chain = dotted_name(func)
            if chain is not None:
                resolved = self.graph.resolve_in_module(self.module, chain)
                if resolved is not None:
                    module, local = resolved
                    if local and self._add_edge_for(module, local):
                        return
                    return
                if self._expanded(chain) is not None:
                    return  # external module call
                base = chain.split(".")[0]
                if base in self.locals and base not in self.param_types:
                    if base not in self.var_types:
                        self.unresolved.append(chain)
                    return
                self.unresolved.append(chain)
            return

    def _record_property_edges(self, node: ast.Attribute) -> None:
        for info in self.types_of(node.value, _depth=1):
            found = self.graph.method_of(info, node.attr)
            if found is not None:
                owner, method = found
                if method in owner.properties:
                    self.callees.add(f"{owner.qualname}.{method}")

    # ------------------------------------------------------------- scan

    def scan(self) -> None:
        """Run the pass over the function body."""
        self._infer_local_types()
        for decorator in self.fn.decorator_list:
            expr = (
                decorator.func
                if isinstance(decorator, ast.Call)
                else decorator
            )
            chain = dotted_name(expr)
            if chain is None:
                continue
            resolved = self.graph.resolve_in_module(self.module, chain)
            if resolved is not None:
                module, local = resolved
                self._add_edge_for(module, local)
        for stmt in self.fn.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._check_call_effects(node)
                    self._record_call_edges(node)
                    if isinstance(node.func, ast.Name) and node.func.id in (
                        "list",
                        "tuple",
                    ):
                        if len(node.args) == 1:
                            self._check_iteration(node.args[0], node)
                elif isinstance(node, ast.Attribute):
                    chain = dotted_name(node)
                    if chain is not None:
                        expanded = self._expanded(chain)
                        if expanded is not None and (
                            expanded == "os.environ"
                            or expanded.startswith("os.environ.")
                        ):
                            self._origin(ENV_READ, node, "os.environ")
                    self._record_property_edges(node)
                elif isinstance(node, ast.Global):
                    self._origin(
                        GLOBAL_MUTATE,
                        node,
                        "global " + ", ".join(node.names),
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        self._check_store_target(target)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    self._check_iteration(node.iter, node)
                elif isinstance(node, ast.comprehension):
                    self._check_iteration(node.iter, node.iter)

    def _infer_local_types(self) -> None:
        """Two passes of flow-insensitive local type inference: enough
        for ``x = Ctor(...)`` / ``y = x`` chains without a fixed point."""
        for _ in range(2):
            for node in ast.walk(self.fn):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1 or not isinstance(
                    node.targets[0], ast.Name
                ):
                    continue
                name = node.targets[0].id
                inferred = self.types_of(node.value)
                if inferred:
                    bucket = self.var_types.setdefault(name, [])
                    for info in inferred:
                        if info not in bucket:
                            bucket.append(info)
                if self._is_set_expr(node.value):
                    self.set_vars.add(name)


def build_function_index(graph: ModuleGraph) -> dict[str, FunctionUnit]:
    """Scan every function and method in ``graph`` into a call graph."""
    index: dict[str, FunctionUnit] = {}

    def scan_one(
        module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        owner: ClassInfo | None,
    ) -> None:
        unit = FunctionUnit(
            qualname=qualname,
            path=module.path,
            line=fn.lineno,
            is_stub=_is_stub(fn),
        )
        if not unit.is_stub:
            scanner = _FunctionScanner(graph, module, fn, owner)
            scanner.scan()
            unit.direct_effects = scanner.effects
            unit.callees = scanner.callees
            unit.unresolved = scanner.unresolved
        index[qualname] = unit

    for module in graph.modules.values():
        for name, fn in module.functions.items():
            scan_one(module, fn, f"{module.name}.{name}", None)
        for info in module.classes.values():
            for method_name, method in info.methods.items():
                scan_one(
                    module, method, f"{info.qualname}.{method_name}", info
                )
    # Prune edges that point outside the index (e.g. methods matched on
    # classes whose defining module was not analyzed).
    for unit in index.values():
        unit.callees = {c for c in unit.callees if c in index}
    return index
