"""The seam contract: root specs, the checker, and REPRO1xx violations.

A :class:`ContractSpec` names a set of *roots* — the functions whose
transitive closure must be effect-free modulo declared seams — and the
effects it tolerates outright.  The shipped
:data:`DEFAULT_CONTRACTS` encode the parallel engine's determinism
guarantee (PR 4): everything reachable from
:func:`repro.parallel.executor.run_windows` / ``execute_shard`` (the
per-shard worker task), from :meth:`repro.core.tmerge.TMerge.run`, and
from the fault-injector seams must stay a pure function of
``(seed, window index)``.

Violations carry the full call chain from the root to the effectful
primitive, rendered the way a reader would retrace it::

    parallel.executor.run_windows → parallel.executor.execute_shard
      → parallel.executor._run_window_task → telemetry.profiling.profiled
      → time.perf_counter

Known-accepted effects (the Profiler's wall clock, the checkpoint
store's opt-in disk mirror) are suppressed through the committed
baseline file — see :mod:`repro.lint.flow.baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.effects import DIAGNOSTICS, EffectOrigin


@dataclass(frozen=True)
class ContractSpec:
    """One reachability contract.

    Attributes:
        name: short identifier shown in diagnostics (``parallel-engine``).
        roots: fully qualified root functions; every function reachable
            from any of them is checked.
        allowed_effects: effects this contract tolerates without a
            baseline entry (normally empty — prefer baselining with a
            rationale over allowing a whole effect class).
        description: one line of intent for reports.
    """

    name: str
    roots: tuple[str, ...]
    allowed_effects: frozenset[str] = frozenset()
    description: str = ""


#: The shipped contracts guarding the parallel engine's determinism
#: guarantee.  Roots name concrete implementations (``TMerge.run``)
#: rather than protocols, because the analysis does not resolve dynamic
#: dispatch (DESIGN.md §11).
DEFAULT_CONTRACTS: tuple[ContractSpec, ...] = (
    ContractSpec(
        name="parallel-engine",
        roots=(
            "repro.parallel.executor.run_windows",
            "repro.parallel.executor.execute_shard",
        ),
        description=(
            "window results are a pure function of (seed, window index) "
            "for any worker count and backend"
        ),
    ),
    ContractSpec(
        name="tmerge-run",
        roots=("repro.core.tmerge.TMerge.run",),
        description=(
            "the merger dispatched through the Merger protocol inside "
            "worker tasks (the analysis cannot see protocol dispatch, so "
            "the implementation is rooted directly)"
        ),
    ),
    ContractSpec(
        name="fault-seams",
        roots=(
            "repro.faults.injectors.ReidCallFaultInjector.check",
            "repro.faults.injectors.FeatureCorruptionInjector.corrupt",
            "repro.faults.injectors.FrameDropInjector.apply",
            "repro.faults.injectors.WindowCrashInjector.arm",
            "repro.faults.injectors.ArmedCrash.tick",
            "repro.faults.injectors.FaultyReidModel.extract",
        ),
        description=(
            "fault schedules replay bit-identically from their injected "
            "seam substreams"
        ),
    ),
)


def short_name(qualname: str) -> str:
    """``qualname`` without the leading ``repro.`` package prefix."""
    return qualname.removeprefix("repro.")


@dataclass(frozen=True)
class FlowViolation:
    """One contract violation: an effect reachable from a root.

    Attributes:
        rule_id: the effect's ``REPRO1xx`` diagnostic code.
        contract: name of the violated :class:`ContractSpec`.
        root: the root the effect is reachable from (shortest chain
            among the contract's roots).
        chain: the call chain from ``root`` to the function containing
            the effect, as fully qualified names.
        origin: the concrete effect origin (file, line, primitive).
    """

    rule_id: str
    contract: str
    root: str
    chain: tuple[str, ...]
    origin: EffectOrigin

    @property
    def key(self) -> str:
        """Stable identity used by the baseline file.

        Deliberately excludes line numbers so unrelated edits do not
        invalidate suppressions: the root, the function containing the
        effect, and the effectful primitive identify the finding.
        """
        return (
            f"{self.rule_id} {self.root} -> {self.chain[-1]} "
            f"[{self.origin.detail}]"
        )

    def render_chain(self) -> str:
        """The call chain as a single readable arrow line."""
        links = [short_name(link) for link in self.chain]
        links.append(self.origin.detail)
        return " → ".join(links)

    def render(self) -> str:
        """Multi-line diagnostic text."""
        diag = DIAGNOSTICS[self.origin.effect]
        header = (
            f"{self.origin.path}:{self.origin.line}:{self.origin.col}: "
            f"{self.rule_id} {self.origin.effect} reachable from "
            f"`{short_name(self.root)}` (contract: {self.contract})"
        )
        return f"{header}\n    {self.render_chain()}\n    ^ {diag.title}"

    def to_dict(self) -> dict:
        """JSON shape for ``--format json`` reports."""
        return {
            "key": self.key,
            "rule_id": self.rule_id,
            "effect": self.origin.effect,
            "contract": self.contract,
            "root": self.root,
            "chain": list(self.chain),
            "path": self.origin.path,
            "line": self.origin.line,
            "col": self.origin.col,
            "detail": self.origin.detail,
        }


@dataclass
class ContractReport:
    """Checker output for one analysis run.

    Attributes:
        violations: every violation, sorted by (path, line, rule, root).
        missing_roots: contract roots absent from the analyzed code —
            almost always a refactor that renamed a seam; surfaced so
            the contract file gets updated instead of silently checking
            nothing.
    """

    violations: list[FlowViolation] = field(default_factory=list)
    missing_roots: list[tuple[str, str]] = field(default_factory=list)


def check_contracts(
    analysis: FlowAnalysis,
    contracts: tuple[ContractSpec, ...] = DEFAULT_CONTRACTS,
) -> ContractReport:
    """Check every contract against ``analysis``.

    Within one contract each offending effect origin is attributed to
    the root with the shortest call chain (ties broken by root name), so
    a single smuggled ``time.time()`` yields one violation per contract,
    not one per root.
    """
    report = ContractReport()
    for contract in contracts:
        present_roots = [
            root for root in contract.roots if root in analysis.functions
        ]
        for root in contract.roots:
            if root not in analysis.functions:
                report.missing_roots.append((contract.name, root))
        if not present_roots:
            continue
        reachable: dict[str, set[str]] = {
            root: analysis.reachable_from(root) for root in present_roots
        }
        covered = set().union(*reachable.values())
        for function in sorted(covered):
            unit = analysis.functions[function]
            for origin in unit.direct_effects:
                if origin.effect in contract.allowed_effects:
                    continue
                best: tuple[int, str, list[str]] | None = None
                for root in sorted(present_roots):
                    if function not in reachable[root]:
                        continue
                    chain = analysis.shortest_chain(root, function)
                    if chain is None:
                        continue
                    candidate = (len(chain), root, chain)
                    if best is None or candidate[:2] < best[:2]:
                        best = candidate
                if best is None:
                    continue
                _, root, chain = best
                report.violations.append(
                    FlowViolation(
                        rule_id=DIAGNOSTICS[origin.effect].rule_id,
                        contract=contract.name,
                        root=root,
                        chain=tuple(chain),
                        origin=origin,
                    )
                )
    report.violations.sort(
        key=lambda v: (
            v.origin.path,
            v.origin.line,
            v.rule_id,
            v.contract,
            v.root,
        )
    )
    return report
