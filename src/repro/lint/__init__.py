"""repro.lint — repo-specific static analysis for the TMerge stack.

A self-contained, stdlib-:mod:`ast` linter (no third-party dependencies)
enforcing the invariants the reproduction's correctness rests on:

* **REPRO001** — randomness only via an injected ``np.random.Generator``
  (reproducible Thompson draws, BBox sampling, Bernoulli trials).
* **REPRO002** — no wall-clock reads in ``core``/``bandit``/``reid``;
  all cost is charged to the simulated ``scorer.cost`` clock.
* **REPRO003** — no mutable default arguments.
* **REPRO004** — no bare ``except:`` or ``print()`` in library code.
* **REPRO005** — no star imports.
* **REPRO006** — no float ``==``/``!=`` in ``core``/``bandit``.
* **REPRO007** — public functions/classes carry docstrings and return
  annotations.
* **REPRO008** — every ``__all__`` entry resolves to a real binding.
* **REPRO009** — no hand-rolled retry loops; retries flow through
  ``repro.resilience`` so backoff lands on the simulated clock.
* **REPRO010** — telemetry is injected; no module-level ``Telemetry()``
  / registry singletons.
* **REPRO011** — decision ledgers are injected; no module-level
  ``DecisionLedger()`` singletons.

Run it with ``python -m repro.lint src tests benchmarks`` (non-zero exit
on violations), or programmatically via :func:`lint_paths` /
:func:`lint_source`.  Rules self-document through ``--list-rules`` and
carry their own violating/clean fixture snippets.
"""

from repro.lint.base import (
    FileContext,
    LintReport,
    Rule,
    Violation,
    context_for_path,
)
from repro.lint.cli import main
from repro.lint.engine import iter_python_files, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "FileContext",
    "LintReport",
    "Rule",
    "Violation",
    "context_for_path",
    "main",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "ALL_RULES",
    "RULES_BY_ID",
]
