"""File discovery and rule execution.

The engine walks the paths given on the command line, parses every
``*.py`` file with the stdlib :mod:`ast`, classifies it into a
:class:`~repro.lint.base.FileContext`, and runs every applicable rule.
Paths are reported relative to the invocation root so diagnostics are
stable across machines.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.base import LintReport, Rule, Violation, context_for_path
from repro.lint.rules import ALL_RULES

#: Directory basenames never descended into.
SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hg",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".venv",
        "venv",
        "build",
        "dist",
        "fixtures",
        "node_modules",
    }
)


def _skipped_dir(name: str) -> bool:
    """True for basenames :func:`iter_python_files` never descends into."""
    return name in SKIP_DIRS or name.startswith(".")


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``*.py`` file under ``paths``, depth-first and sorted.

    Files are yielded once even when the given paths overlap; hidden and
    cache directories (see :data:`SKIP_DIRS`) are skipped — including
    when such a directory is passed directly, not just when it is found
    while walking (directly-passed *files* are always honoured: naming a
    concrete ``*.py`` file is an explicit request to lint it).
    """
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            resolved = root.resolve()
            if root.suffix == ".py" and resolved not in seen:
                seen.add(resolved)
                yield root
            continue
        if _skipped_dir(root.name):
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames if not _skipped_dir(d)
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = Path(dirpath) / filename
                resolved = path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                yield path


def display_path(path: Path) -> str:
    """``path`` relative to the current directory when possible, POSIX-style."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return Path(path).as_posix()


def lint_source(
    source: str,
    virtual_path: str,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint an in-memory snippet as if it lived at ``virtual_path``.

    This is the fixture entry point: rule tests lint each rule's
    ``violating_example``/``clean_example`` under the rule's
    ``example_path`` so scoped rules fire exactly as they would on disk.

    Raises:
        SyntaxError: when ``source`` does not parse.
    """
    tree = ast.parse(source, filename=virtual_path)
    ctx = context_for_path(virtual_path)
    violations: list[Violation] = []
    for rule in rules if rules is not None else ALL_RULES:
        if rule.applies_to(ctx):
            violations.extend(rule.check(tree, ctx))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate a report."""
    active = list(rules) if rules is not None else list(ALL_RULES)
    report = LintReport()
    for path in iter_python_files(paths):
        shown = display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=shown)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append((shown, str(exc)))
            continue
        report.files_checked += 1
        ctx = context_for_path(shown)
        for rule in active:
            if rule.applies_to(ctx):
                report.violations.extend(rule.check(tree, ctx))
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return report
