"""The repo-specific rule set (REPRO001–REPRO008).

Each rule encodes one invariant the TMerge reproduction depends on but the
test suite can only spot-check — reproducible randomness, simulated-cost
purity, well-formed public API.  Rules carry their own fixtures
(``violating_example`` / ``clean_example``); ``tests/test_lint.py`` runs
every rule against both.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.base import FileContext, Rule, Violation

#: ``numpy.random`` attributes that *construct* generators rather than
#: drawing from hidden global state; these are the only sanctioned way to
#: obtain randomness.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: Wall-clock reads that would leak real time into simulated-cost results.
WALL_CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _attribute_chain(node: ast.AST) -> tuple[str, ...] | None:
    """Resolve ``np.random.seed`` into ``("np", "random", "seed")``.

    Returns ``None`` when the expression is not a pure name/attribute
    chain (e.g. a subscript or call in the middle).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class NoAmbientRandomnessRule(Rule):
    """REPRO001 — randomness must flow through an injected Generator."""

    rule_id = "REPRO001"
    title = "no ambient randomness in library code"
    rationale = (
        "Thompson draws, BBox sampling and Bernoulli trials must be "
        "reproducible from a single seed, so library code may not touch "
        "the stdlib `random` module or numpy's global RNG; construct a "
        "`np.random.Generator` (e.g. `default_rng(seed)`) and pass it in."
    )
    violating_example = textwrap.dedent(
        """\
        import numpy as np

        def draw() -> float:
            \"\"\"Draw.\"\"\"
            return float(np.random.rand())
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"
        import numpy as np

        def draw(rng: np.random.Generator) -> float:
            \"\"\"Draw.\"\"\"
            return float(rng.random())
        """
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag stdlib-``random`` imports and numpy global-RNG usage."""
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        violations.append(
                            self.violation(
                                ctx,
                                node,
                                "stdlib `random` is banned in library code; "
                                "accept an `rng: np.random.Generator` "
                                "parameter seeded from the run's "
                                "`SeedSequence` substream (REPRO102 traces "
                                "leaks across calls)",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            "stdlib `random` is banned in library code; "
                            "accept an `rng: np.random.Generator` parameter "
                            "seeded from the run's `SeedSequence` substream "
                            "(REPRO102 traces leaks across calls)",
                        )
                    )
                elif node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name not in ALLOWED_NP_RANDOM:
                            violations.append(
                                self.violation(
                                    ctx,
                                    node,
                                    f"`from numpy.random import {alias.name}` "
                                    "draws from global state; only Generator "
                                    "constructors may be imported",
                                )
                            )
            elif isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if (
                    chain is not None
                    and len(chain) == 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                    and chain[2] not in ALLOWED_NP_RANDOM
                ):
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"`{'.'.join(chain)}()` uses numpy's global RNG; "
                            "draw from an injected `rng: "
                            "np.random.Generator` parameter seeded from the "
                            "run's `SeedSequence` substream (REPRO102 traces "
                            "leaks across calls)",
                        )
                    )
        return violations


class SimulatedCostOnlyRule(Rule):
    """REPRO002 — no wall-clock reads on the simulated-cost path."""

    rule_id = "REPRO002"
    title = "no wall-clock time on the simulated-cost path"
    rationale = (
        "All figures report the simulated `scorer.cost` clock; a "
        "`time.time()`/`perf_counter()` read inside core/bandit/reid "
        "silently turns reproducible cost accounting into machine-"
        "dependent wall time."
    )
    violating_example = textwrap.dedent(
        """\
        import time

        def elapsed() -> float:
            \"\"\"Elapsed.\"\"\"
            return time.perf_counter()
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"

        def elapsed(cost: object) -> float:
            \"\"\"Elapsed simulated seconds.\"\"\"
            return cost.seconds
        """
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the cost-path subpackages (core, bandit, reid)."""
        return ctx.is_cost_path

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag ``time.<clock>()`` calls and ``from time import <clock>``."""
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in WALL_CLOCK_FUNCTIONS:
                        violations.append(
                            self.violation(
                                ctx,
                                node,
                                f"`from time import {alias.name}` on the "
                                "simulated-cost path; charge the injected "
                                "`CostModel` clock (`scorer.cost`, read via "
                                "`cost.seconds`/`cost.milliseconds`) instead "
                                "(REPRO101 traces reads across calls)",
                            )
                        )
            elif isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] == "time"
                    and chain[1] in WALL_CLOCK_FUNCTIONS
                ):
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"`{'.'.join(chain)}()` reads the wall clock on "
                            "the simulated-cost path; charge the injected "
                            "`CostModel` clock (`scorer.cost`, read via "
                            "`cost.seconds`/`cost.milliseconds`) instead "
                            "(REPRO101 traces reads across calls)",
                        )
                    )
        return violations


class NoMutableDefaultsRule(Rule):
    """REPRO003 — no mutable default argument values."""

    rule_id = "REPRO003"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is shared across calls; samplers constructed "
        "twice would silently share state and break run isolation."
    )
    violating_example = textwrap.dedent(
        """\
        def collect(items: list = []) -> list:
            \"\"\"Collect.\"\"\"
            return items
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"

        def collect(items: list | None = None) -> list:
            \"\"\"Collect.\"\"\"
            return items if items is not None else []
        """
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def applies_to(self, ctx: FileContext) -> bool:
        """All linted files, tests included."""
        return True

    def _is_mutable(self, node: ast.AST | None) -> bool:
        if node is None:
            return False
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag list/dict/set(/comprehension) defaults on any function."""
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        violations.append(
                            self.violation(
                                ctx,
                                default,
                                "mutable default argument is shared across "
                                "calls; default to None and build inside",
                            )
                        )
        return violations


class LibraryHygieneRule(Rule):
    """REPRO004 — no bare ``except:`` or ``print()`` in library code."""

    rule_id = "REPRO004"
    title = "no bare except / print in library code"
    rationale = (
        "Bare excepts swallow KeyboardInterrupt and real bugs; prints from "
        "library code pollute benchmark output.  CLI entry modules "
        "(`__main__.py`, `cli.py`) are exempt — user-facing output is "
        "their job."
    )
    violating_example = textwrap.dedent(
        """\
        def load() -> None:
            \"\"\"Load.\"\"\"
            try:
                print("loading")
            except:
                pass
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"

        def load() -> None:
            \"\"\"Load.\"\"\"
            try:
                prepare()
            except ValueError:
                raise

        def prepare() -> None:
            \"\"\"Prepare.\"\"\"
        """
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Library modules that are not CLI entry points."""
        return ctx.is_library and not ctx.is_cli

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag ``except:`` handlers with no type and ``print(...)`` calls."""
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        "bare `except:` swallows everything including "
                        "KeyboardInterrupt; name the exception",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        "`print()` in library code; return data or use a "
                        "CLI entry module for user-facing output",
                    )
                )
        return violations


class NoStarImportsRule(Rule):
    """REPRO005 — no ``from module import *``."""

    rule_id = "REPRO005"
    title = "no star imports"
    rationale = (
        "Star imports defeat the __all__ resolution check (REPRO008) and "
        "make the provenance of names unauditable."
    )
    violating_example = "from os.path import *\n"
    clean_example = '"""Fixture."""\nfrom os.path import join\n\n_ = join\n'

    def applies_to(self, ctx: FileContext) -> bool:
        """All linted files, tests included."""
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag any ``import *``."""
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == "*" for alias in node.names
            ):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"star import from `{node.module}`; import names "
                        "explicitly",
                    )
                )
        return violations


class NoFloatEqualityRule(Rule):
    """REPRO006 — no float ``==``/``!=`` in core/bandit arithmetic."""

    rule_id = "REPRO006"
    title = "no float equality comparisons in core/bandit"
    rationale = (
        "Posterior means, confidence radii and normalized distances are "
        "accumulated floats; exact equality against a float literal is "
        "almost always a latent bug (use tolerances, `math.isclose`, or "
        "compare counts instead)."
    )
    violating_example = textwrap.dedent(
        """\
        def converged(mean: float) -> bool:
            \"\"\"Converged.\"\"\"
            return mean == 0.5
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"
        import math

        def converged(mean: float) -> bool:
            \"\"\"Converged.\"\"\"
            return math.isclose(mean, 0.5, abs_tol=1e-9)
        """
    )

    _FLOAT_ATTRS = frozenset({"inf", "nan"})

    def applies_to(self, ctx: FileContext) -> bool:
        """Only ``repro.core`` and ``repro.bandit``."""
        return ctx.subpackage in ("core", "bandit")

    def _is_float_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self._is_float_literal(node.operand)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "float"
        chain = _attribute_chain(node)
        if chain is not None and len(chain) == 2:
            return (
                chain[0] in ("math", "np", "numpy")
                and chain[1] in self._FLOAT_ATTRS
            )
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag ``==``/``!=`` comparisons with a float-literal operand."""
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_float_literal(left) or self._is_float_literal(
                    right
                ):
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            "float equality comparison; use a tolerance "
                            "(`math.isclose`) or compare integer counts",
                        )
                    )
        return violations


class PublicApiDocsRule(Rule):
    """REPRO007 — public API must be documented and annotated."""

    rule_id = "REPRO007"
    title = "public functions/classes need docstrings and return annotations"
    rationale = (
        "The paper reproduction is also a reference implementation; every "
        "public name must state what it computes (docstring) and what it "
        "returns (annotation) so invariants are auditable from signatures."
    )
    violating_example = textwrap.dedent(
        """\
        def score(x):
            return x * 2.0
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"

        def score(x: float) -> float:
            \"\"\"Double the input.\"\"\"
            return x * 2.0
        """
    )

    def _is_stub(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Protocol/overload stubs (`...`-only bodies) are exempt."""
        body = [
            stmt
            for stmt in node.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        return len(body) == 1 and (
            (
                isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and body[0].value.value is Ellipsis
            )
        )

    def _check_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
        owner: str | None,
    ) -> list[Violation]:
        name = node.name
        qualified = f"{owner}.{name}" if owner else name
        if name.startswith("_"):
            return []
        if self._is_stub(node):
            return []
        violations = []
        if ast.get_docstring(node) is None:
            violations.append(
                self.violation(
                    ctx, node, f"public function `{qualified}` lacks a docstring"
                )
            )
        if node.returns is None:
            violations.append(
                self.violation(
                    ctx,
                    node,
                    f"public function `{qualified}` lacks a return annotation",
                )
            )
        return violations

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Check module, class and method docstrings/annotations."""
        violations: list[Violation] = []
        if ast.get_docstring(tree) is None:
            violations.append(
                self.violation(ctx, tree, "module lacks a docstring")
            )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(self._check_function(node, ctx, None))
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"public class `{node.name}` lacks a docstring",
                        )
                    )
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        violations.extend(
                            self._check_function(member, ctx, node.name)
                        )
        return violations


class AllExportsResolveRule(Rule):
    """REPRO008 — every ``__all__`` entry resolves to a real binding."""

    rule_id = "REPRO008"
    title = "__all__ entries must resolve"
    rationale = (
        "A stale `__all__` entry raises AttributeError only when someone "
        "star-imports or introspects; resolving it statically catches the "
        "drift at lint time."
    )
    violating_example = textwrap.dedent(
        """\
        \"\"\"Module.\"\"\"
        from os.path import join

        __all__ = ["join", "missing_name"]
        """
    )
    clean_example = textwrap.dedent(
        """\
        \"\"\"Module.\"\"\"
        from os.path import join

        __all__ = ["join"]
        """
    )
    example_path = "src/repro/core/__init__.py"

    def _bound_names(self, body: list[ast.stmt]) -> set[str]:
        """Names bound at module level, descending into if/try blocks."""
        names: set[str] = set()
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(
                        alias.asname
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        names.add(alias.asname if alias.asname else alias.name)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            names.add(name_node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
            elif isinstance(stmt, ast.If):
                names |= self._bound_names(stmt.body)
                names |= self._bound_names(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                names |= self._bound_names(stmt.body)
                names |= self._bound_names(stmt.orelse)
                names |= self._bound_names(stmt.finalbody)
                for handler in stmt.handlers:
                    names |= self._bound_names(handler.body)
        return names

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Resolve every literal ``__all__`` entry against module bindings."""
        exports: list[tuple[ast.AST, str]] = []
        for stmt in tree.body:
            target_names = []
            if isinstance(stmt, ast.Assign):
                target_names = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                value = stmt.value
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                target_names = [stmt.target.id]
                value = stmt.value
            else:
                continue
            if "__all__" not in target_names:
                continue
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        exports.append((element, element.value))
        if not exports:
            return []
        bound = self._bound_names(tree.body)
        violations: list[Violation] = []
        seen: set[str] = set()
        for node, name in exports:
            if name in seen:
                violations.append(
                    self.violation(
                        ctx, node, f"duplicate `__all__` entry `{name}`"
                    )
                )
                continue
            seen.add(name)
            if name not in bound:
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"`__all__` exports `{name}` but the module never "
                        "binds it",
                    )
                )
        return violations


class NoHandRolledRetryRule(Rule):
    """REPRO009 — retries must flow through ``repro.resilience``."""

    rule_id = "REPRO009"
    title = "no hand-rolled retry loops in library code"
    rationale = (
        "A bare `while True: try/except: continue` retry neither charges "
        "backoff to the simulated clock nor consults the circuit breaker, "
        "so its cost and failure behavior are invisible to the "
        "experiments.  Retries belong in `repro.resilience.retry_call`, "
        "where attempts, penalties and backoff are accounted uniformly."
    )
    violating_example = textwrap.dedent(
        """\
        def fetch(client) -> float:
            \"\"\"Fetch.\"\"\"
            while True:
                try:
                    return client.call()
                except ValueError:
                    continue
        """
    )
    clean_example = textwrap.dedent(
        '''\
        """Fixture."""
        from repro.resilience import RetryPolicy, retry_call


        def fetch(client: object, clock: object) -> float:
            """Fetch one value, retrying through the shared policy."""
            return retry_call(client.call, RetryPolicy(), clock)
        '''
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Library code, except the resilience package itself."""
        return ctx.is_library and ctx.subpackage != "resilience"

    @staticmethod
    def _is_retry_loop(loop: ast.While | ast.For) -> bool:
        """A loop retries when a contained handler swallows the failure.

        A handler that re-raises, breaks, or returns escapes the loop and
        is ordinary error handling; a handler with none of those keeps
        looping over the same attempt — a retry.
        """
        for node in ast.walk(loop):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                escapes = any(
                    isinstance(inner, (ast.Raise, ast.Break, ast.Return))
                    for stmt in handler.body
                    for inner in ast.walk(stmt)
                )
                if not escapes:
                    return True
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag ``while``/``for range(...)`` loops that swallow-and-retry."""
        violations: list[Violation] = []
        seen: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.While):
                loop = node
            elif (
                isinstance(node, ast.For)
                and isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"
            ):
                loop = node
            else:
                continue
            if id(loop) in seen:
                continue
            seen.add(id(loop))
            if self._is_retry_loop(loop):
                violations.append(
                    self.violation(
                        ctx,
                        loop,
                        "hand-rolled retry loop; route the retry through "
                        "`repro.resilience.retry_call` so backoff and "
                        "failures are accounted on the simulated clock",
                    )
                )
        return violations


#: Telemetry types whose import-time construction REPRO010 bans.
_TELEMETRY_TYPES = frozenset(
    {"Telemetry", "MetricsRegistry", "Tracer", "Profiler"}
)


class InjectedTelemetryRule(Rule):
    """REPRO010 — telemetry is injected, never a module-level singleton.

    The scanning machinery is shared with REPRO011
    (:class:`InjectedLedgerRule`): subclasses override
    :attr:`banned_types`, :attr:`home_subpackage` and :attr:`noun` to ban
    import-time construction of a different injected-observer family.
    """

    #: Observer types whose import-time construction the rule bans.
    banned_types: frozenset[str] = _TELEMETRY_TYPES
    #: The subpackage that legitimately defines those types (exempt).
    home_subpackage = "telemetry"
    #: How the diagnostic names the observer family.
    noun = "telemetry"

    rule_id = "REPRO010"
    title = "telemetry must be injected (no module-level singletons)"
    rationale = (
        "A module-level `Telemetry()` (or bare `MetricsRegistry` / "
        "`Tracer` / `Profiler`) is ambient global state: every run "
        "records into the same object, so two experiments in one process "
        "contaminate each other's counters and tests pass or fail by "
        "import order.  The owner of a run constructs one Telemetry and "
        "injects it down through constructors; components accept "
        "`telemetry=None` and skip recording."
    )
    violating_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"
        from repro.telemetry import Telemetry

        TELEMETRY = Telemetry()
        """
    )
    clean_example = textwrap.dedent(
        '''\
        """Fixture."""
        from repro.telemetry import Telemetry


        def build_run_telemetry() -> Telemetry:
            """Construct the run-scoped telemetry an owner injects down."""
            return Telemetry()
        '''
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Library code, except the observer family's own package."""
        return ctx.is_library and ctx.subpackage != self.home_subpackage

    @staticmethod
    def _called_name(func: ast.expr) -> str | None:
        """The simple or attribute name a call targets, if any."""
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _scan(
        self, node: ast.AST, ctx: FileContext, out: list[Violation]
    ) -> None:
        """Flag telemetry constructions reachable at import time.

        Recurses through module-level statements, class bodies, and
        conditional/try blocks (all of which execute on import) but not
        into function or lambda bodies (which execute per call, where
        instance-scoped construction is legitimate).
        """
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if (
            isinstance(node, ast.Call)
            and self._called_name(node.func) in self.banned_types
        ):
            out.append(
                self.violation(
                    ctx,
                    node,
                    f"`{self._called_name(node.func)}()` constructed at "
                    f"import time; construct {self.noun} in the run "
                    "owner and inject it through constructors "
                    f"({self.rule_id})",
                )
            )
        for child in ast.iter_child_nodes(node):
            self._scan(child, ctx, out)

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Violation]:
        """Flag import-time telemetry singletons."""
        violations: list[Violation] = []
        for stmt in tree.body:
            self._scan(stmt, ctx, violations)
        return violations


#: Provenance types whose import-time construction REPRO011 bans.
_PROVENANCE_TYPES = frozenset({"DecisionLedger"})


class InjectedLedgerRule(InjectedTelemetryRule):
    """REPRO011 — decision ledgers are injected, never module singletons."""

    banned_types = _PROVENANCE_TYPES
    home_subpackage = "provenance"
    noun = "the decision ledger"

    rule_id = "REPRO011"
    title = "decision ledgers must be injected (no module-level singletons)"
    rationale = (
        "A module-level `DecisionLedger()` is ambient global state with "
        "sharper teeth than a telemetry singleton: the ledger rides in "
        "checkpoints, so two runs recording into one shared ledger "
        "corrupt each other's provenance *and* each other's resume "
        "state.  The owner of a run constructs one ledger and injects "
        "it down through constructors (`TMerge(ledger=...)`, "
        "`IngestionPipeline(ledger=...)`, ...); components accept "
        "`ledger=None` and skip recording, which keeps the unobserved "
        "path bit-identical."
    )
    violating_example = textwrap.dedent(
        """\
        \"\"\"Fixture.\"\"\"
        from repro.provenance import DecisionLedger

        LEDGER = DecisionLedger()
        """
    )
    clean_example = textwrap.dedent(
        '''\
        """Fixture."""
        from repro.provenance import DecisionLedger


        def build_run_ledger() -> DecisionLedger:
            """Construct the run-scoped ledger an owner injects down."""
            return DecisionLedger()
        '''
    )


#: Every shipped rule, in rule-id order.  The engine and the tests iterate
#: this list; registering a new rule means appending here.
ALL_RULES: tuple[Rule, ...] = (
    NoAmbientRandomnessRule(),
    SimulatedCostOnlyRule(),
    NoMutableDefaultsRule(),
    LibraryHygieneRule(),
    NoStarImportsRule(),
    NoFloatEqualityRule(),
    PublicApiDocsRule(),
    AllExportsResolveRule(),
    NoHandRolledRetryRule(),
    InjectedTelemetryRule(),
    InjectedLedgerRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
