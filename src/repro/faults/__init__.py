"""Deterministic fault injection for the TMerge serving stack.

The paper's deployment (§I) puts TMerge between a tracker and a query
engine, with the ReID model as the expensive external dependency — exactly
the component that times out, returns garbage embeddings, or goes offline
in a real serving stack.  This package simulates those failures at
well-defined seams, driven entirely by injected seeded generators, so
chaos runs are as reproducible as clean ones.

Companion package: :mod:`repro.resilience` survives what this package
breaks.
"""

from repro.faults.errors import (
    InjectedFault,
    ReidFaultError,
    ReidTimeoutError,
    WindowCrashError,
)
from repro.faults.injectors import (
    ArmedCrash,
    CORRUPTION_MODES,
    FaultyReidModel,
    FeatureCorruptionInjector,
    FrameDropInjector,
    ReidCallFaultInjector,
    WindowCrashInjector,
)
from repro.faults.profiles import (
    PROFILES,
    FaultProfile,
    compose_profiles,
    fault_profile,
)

__all__ = [
    "InjectedFault",
    "ReidFaultError",
    "ReidTimeoutError",
    "WindowCrashError",
    "ArmedCrash",
    "CORRUPTION_MODES",
    "FaultyReidModel",
    "FeatureCorruptionInjector",
    "FrameDropInjector",
    "ReidCallFaultInjector",
    "WindowCrashInjector",
    "PROFILES",
    "FaultProfile",
    "compose_profiles",
    "fault_profile",
]
