"""Named, seeded fault profiles — the chaos configurations of the repo.

A :class:`FaultProfile` is a declarative bundle of fault rates.  All
randomness derives from one ``seed`` through independent
:class:`numpy.random.SeedSequence` children (one per seam), so enabling a
new fault type never perturbs the schedule of an existing one, and the
same profile + seed reproduces the exact same chaos run.

The registry ships the profiles the CI chaos matrix runs:

* ``flaky-reid`` — 10 % of ReID calls fail, 2 % time out.
* ``corrupt-features`` — 5 % of embeddings come back all-NaN and 5 %
  are silently swapped with an earlier call's embedding.
* ``window-crash`` — every window's worker is killed once mid-run.
* ``drop-frames`` — 5 % of detection frames arrive empty.
* ``reid-offline`` — every ReID call fails (full outage; forces the
  circuit breaker open and the pipeline into degraded mode).
* ``chaos`` — everything at once, at moderate rates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.faults.injectors import (
    CORRUPTION_MODES,
    FaultyReidModel,
    FeatureCorruptionInjector,
    FrameDropInjector,
    ReidCallFaultInjector,
    WindowCrashInjector,
)

#: Stable child-stream indices, one per injection seam.  Appending new
#: seams keeps existing schedules byte-stable.
_STREAM_CALL = 0
_STREAM_CORRUPT = 1
_STREAM_FRAMES = 2
_STREAM_CRASH = 3


@dataclass(frozen=True)
class FaultProfile:
    """A declarative, seeded chaos configuration.

    Attributes:
        name: registry name (shown in reports and CLI output).
        reid_failure_rate: per-call probability of a hard ReID failure.
        reid_timeout_rate: per-call probability of a ReID timeout.
        timeout_penalty_ms: simulated wait charged per timeout.
        corrupt_rate: per-call probability of a corrupted embedding.
        corrupt_mode: ``"nan"`` or ``"swap"`` (see
            :class:`~repro.faults.injectors.FeatureCorruptionInjector`).
        frame_drop_rate: per-frame probability of a blanked frame.
        window_crash_rate: per-window probability of a worker crash.
        crash_min_calls: earliest scorer call a crash may fire at.
        crash_max_calls: latest scorer call a crash may fire at.
        seed: master seed; every injector draws from an independent
            child stream spawned from it.
    """

    name: str = "custom"
    reid_failure_rate: float = 0.0
    reid_timeout_rate: float = 0.0
    timeout_penalty_ms: float = 50.0
    corrupt_rate: float = 0.0
    corrupt_mode: str = "nan"
    frame_drop_rate: float = 0.0
    window_crash_rate: float = 0.0
    crash_min_calls: int = 5
    crash_max_calls: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "reid_failure_rate",
            "reid_timeout_rate",
            "corrupt_rate",
            "frame_drop_rate",
            "window_crash_rate",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1]")
        if self.corrupt_mode not in CORRUPTION_MODES:
            raise ValueError(
                f"corrupt_mode must be one of {CORRUPTION_MODES}"
            )

    def _rng(self, stream: int) -> np.random.Generator:
        """An independent generator for one injection seam."""
        children = np.random.SeedSequence(self.seed).spawn(4)
        return np.random.default_rng(children[stream])

    @property
    def injects_reid_faults(self) -> bool:
        """True when the ReID call/feature seam is active."""
        return (
            self.reid_failure_rate > 0
            or self.reid_timeout_rate > 0
            or self.corrupt_rate > 0
        )

    def with_seed(self, seed: int) -> FaultProfile:
        """This profile re-seeded (a distinct, equally reproducible run)."""
        return replace(self, seed=seed)

    def window_seam_seeds(
        self, n_windows: int
    ) -> list[
        tuple[
            np.random.SeedSequence,
            np.random.SeedSequence,
            np.random.SeedSequence,
        ]
    ]:
        """Per-window ``(call, corrupt, crash)`` seed substreams.

        Window-local execution (:mod:`repro.parallel`) gives every
        window an independent child of each seam's root sequence, so a
        window's fault schedule is a pure function of
        ``(profile seed, window index)`` — independent of worker count
        and scheduling order.  Children come from the same per-seam
        roots :meth:`_rng` uses, so adding a seam never perturbs the
        others.
        """
        roots = np.random.SeedSequence(self.seed).spawn(4)
        call = roots[_STREAM_CALL].spawn(n_windows)
        corrupt = roots[_STREAM_CORRUPT].spawn(n_windows)
        crash = roots[_STREAM_CRASH].spawn(n_windows)
        return list(zip(call, corrupt, crash))

    def window_seam_seed(
        self, index: int
    ) -> tuple[
        np.random.SeedSequence,
        np.random.SeedSequence,
        np.random.SeedSequence,
    ]:
        """One window's ``(call, corrupt, crash)`` substreams, lazily.

        Identical to ``window_seam_seeds(n)[index]`` for every ``n >
        index`` (``SeedSequence.spawn`` children are addressable by
        spawn key), but needs no window count up front — the streaming
        service derives seeds window by window over an unbounded feed.
        """
        if index < 0:
            raise ValueError("index must be non-negative")
        return tuple(
            np.random.SeedSequence(self.seed, spawn_key=(stream, index))
            for stream in (_STREAM_CALL, _STREAM_CORRUPT, _STREAM_CRASH)
        )

    def wrap_model(
        self,
        model,
        call_rng: np.random.Generator | None = None,
        corruption_rng: np.random.Generator | None = None,
    ) -> FaultyReidModel:
        """Wrap a ReID model with this profile's call/feature injectors.

        Args:
            model: the extractor to wrap.
            call_rng: optional override of the call-fault generator
                (the parallel engine passes a per-window substream);
                defaults to the profile's run-level seam stream.
            corruption_rng: optional override of the corruption
                generator, same convention.
        """
        call = None
        if self.reid_failure_rate > 0 or self.reid_timeout_rate > 0:
            call = ReidCallFaultInjector(
                call_rng if call_rng is not None else self._rng(_STREAM_CALL),
                failure_rate=self.reid_failure_rate,
                timeout_rate=self.reid_timeout_rate,
                timeout_penalty_ms=self.timeout_penalty_ms,
            )
        corruption = None
        if self.corrupt_rate > 0:
            corruption = FeatureCorruptionInjector(
                corruption_rng
                if corruption_rng is not None
                else self._rng(_STREAM_CORRUPT),
                rate=self.corrupt_rate,
                mode=self.corrupt_mode,
            )
        return FaultyReidModel(
            model, call_injector=call, corruption_injector=corruption
        )

    def frame_injector(self) -> FrameDropInjector:
        """A fresh frame-drop injector on this profile's schedule."""
        return FrameDropInjector(
            self._rng(_STREAM_FRAMES), rate=self.frame_drop_rate
        )

    def window_crasher(
        self, rng: np.random.Generator | None = None
    ) -> WindowCrashInjector:
        """A fresh window-crash injector on this profile's schedule.

        Args:
            rng: optional override of the crash-schedule generator (the
                parallel engine passes a per-window substream); defaults
                to the profile's run-level seam stream.
        """
        return WindowCrashInjector(
            rng if rng is not None else self._rng(_STREAM_CRASH),
            crash_rate=self.window_crash_rate,
            min_calls=self.crash_min_calls,
            max_calls=self.crash_max_calls,
        )


#: The shipped chaos profiles, by registry name.
PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            name="flaky-reid",
            reid_failure_rate=0.10,
            reid_timeout_rate=0.02,
        ),
        FaultProfile(
            name="corrupt-features",
            corrupt_rate=0.05,
            corrupt_mode="nan",
        ),
        FaultProfile(
            name="swapped-features",
            corrupt_rate=0.10,
            corrupt_mode="swap",
        ),
        FaultProfile(
            name="window-crash",
            window_crash_rate=1.0,
        ),
        FaultProfile(
            name="drop-frames",
            frame_drop_rate=0.05,
        ),
        FaultProfile(
            name="reid-offline",
            reid_failure_rate=1.0,
        ),
        FaultProfile(
            name="chaos",
            reid_failure_rate=0.05,
            reid_timeout_rate=0.02,
            corrupt_rate=0.02,
            corrupt_mode="nan",
            frame_drop_rate=0.02,
            window_crash_rate=0.5,
        ),
    )
}


def compose_profiles(
    name: str, parts: list[FaultProfile], seed: int = 0
) -> FaultProfile:
    """Compose several rate bundles into one profile.

    The scenario generator (:mod:`repro.scenarios`) expresses each regime
    axis (weather corruption, camera dropouts, …) as its own
    :class:`FaultProfile`; this combines them into the single profile a
    run consumes.  Rates **add** across parts and are capped at ``1.0``,
    so a composed schedule can never exceed the sum of its parts nor a
    valid probability — the invariant the scenario property suite pins.
    Non-rate knobs merge conservatively: the crash-call window is the
    union of the parts' windows, the timeout penalty is the worst
    (largest) one, and corruption modes must agree across every part
    that actually corrupts.

    Args:
        name: registry-style name of the composite.
        parts: the rate bundles to combine (empty list = all-zero rates).
        seed: master seed of the composed schedule.

    Raises:
        ValueError: when two parts request different corruption modes
            with non-zero rates (the schedules would be ambiguous).
    """
    corrupt_mode = CORRUPTION_MODES[0]
    corrupting = [p for p in parts if p.corrupt_rate > 0]
    if corrupting:
        modes = {p.corrupt_mode for p in corrupting}
        if len(modes) > 1:
            raise ValueError(
                f"conflicting corruption modes in composition: {sorted(modes)}"
            )
        corrupt_mode = corrupting[0].corrupt_mode

    def capped(field_name: str) -> float:
        return min(1.0, sum(getattr(p, field_name) for p in parts))

    return FaultProfile(
        name=name,
        reid_failure_rate=capped("reid_failure_rate"),
        reid_timeout_rate=capped("reid_timeout_rate"),
        timeout_penalty_ms=max(
            [p.timeout_penalty_ms for p in parts], default=50.0
        ),
        corrupt_rate=capped("corrupt_rate"),
        corrupt_mode=corrupt_mode,
        frame_drop_rate=capped("frame_drop_rate"),
        window_crash_rate=capped("window_crash_rate"),
        crash_min_calls=min([p.crash_min_calls for p in parts], default=5),
        crash_max_calls=max([p.crash_max_calls for p in parts], default=200),
        seed=seed,
    )


def fault_profile(name: str, seed: int | None = None) -> FaultProfile:
    """Look up a shipped profile, optionally re-seeded.

    Raises:
        KeyError: on an unknown profile name (message lists known names).
    """
    try:
        profile = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
    if seed is not None:
        profile = profile.with_seed(seed)
    return profile
