"""Seeded, composable fault injectors.

Each injector owns an injected :class:`numpy.random.Generator` (never the
global RNG — REPRO001) so a fault schedule is a pure function of its seed
and the sequence of calls made against it.  That is what makes chaos runs
*reproducible*: the same profile + seed fails the same calls, corrupts the
same features, and crashes the same windows every time.

Injection seams:

* :class:`ReidCallFaultInjector` — raises at the ReID call boundary
  (failure / timeout), consulted by :class:`FaultyReidModel` *before* the
  wrapped model runs, so a failed call never consumes model RNG state.
* :class:`FeatureCorruptionInjector` — corrupts returned embeddings
  (all-NaN vectors, or silently swapped latents from earlier calls).
* :class:`FrameDropInjector` — blanks whole detection frames (feed
  hiccups upstream of the tracker).
* :class:`WindowCrashInjector` — arms a per-window countdown that kills
  the window worker after a seeded number of scorer calls.
"""

from __future__ import annotations

import numpy as np

from repro.faults.errors import (
    ReidFaultError,
    ReidTimeoutError,
    WindowCrashError,
)


class ReidCallFaultInjector:
    """Randomly fails or times out ReID calls.

    Args:
        rng: injected randomness source driving the fault schedule.
        failure_rate: per-call probability of a :class:`ReidFaultError`.
        timeout_rate: per-call probability of a :class:`ReidTimeoutError`
            (evaluated after the failure draw misses).
        timeout_penalty_ms: simulated wait charged for each timeout.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        timeout_penalty_ms: float = 50.0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if not 0.0 <= timeout_rate <= 1.0:
            raise ValueError("timeout_rate must be in [0, 1]")
        if timeout_penalty_ms < 0:
            raise ValueError("timeout_penalty_ms must be non-negative")
        self.rng = rng
        self.failure_rate = failure_rate
        self.timeout_rate = timeout_rate
        self.timeout_penalty_ms = timeout_penalty_ms
        self.n_failures = 0
        self.n_timeouts = 0
        #: Optional injected :class:`~repro.telemetry.Telemetry`; set by
        #: the run owner after construction (the profile builds injectors).
        self.telemetry = None

    def check(self) -> None:
        """Consult the schedule for one call; raise when it should fail."""
        if self.failure_rate > 0 and self.rng.random() < self.failure_rate:
            self.n_failures += 1
            if self.telemetry is not None:
                self.telemetry.count("faults.reid_failures")
            raise ReidFaultError(
                f"injected ReID failure #{self.n_failures}"
            )
        if self.timeout_rate > 0 and self.rng.random() < self.timeout_rate:
            self.n_timeouts += 1
            if self.telemetry is not None:
                self.telemetry.count("faults.reid_timeouts")
            raise ReidTimeoutError(
                f"injected ReID timeout #{self.n_timeouts}",
                penalty_ms=self.timeout_penalty_ms,
            )


#: Supported feature-corruption modes.
CORRUPTION_MODES = ("nan", "swap")


class FeatureCorruptionInjector:
    """Randomly corrupts extracted feature vectors.

    Modes:

    * ``"nan"`` — the embedding comes back all-NaN (a crashed kernel or a
      serialization bug).  Downstream distances become NaN, which the
      defensive layer must catch (see
      :meth:`repro.reid.scorer.ReidScorer.normalized_distance`).
    * ``"swap"`` — the embedding of a *previous* call is silently returned
      instead (a batching/indexing bug in the serving layer).  The value
      is finite and unit-norm, so only behavioral tests can detect it.

    Args:
        rng: injected randomness source.
        rate: per-call corruption probability.
        mode: one of :data:`CORRUPTION_MODES`.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate: float = 0.0,
        mode: str = "nan",
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if mode not in CORRUPTION_MODES:
            raise ValueError(f"mode must be one of {CORRUPTION_MODES}")
        self.rng = rng
        self.rate = rate
        self.mode = mode
        self.n_corrupted = 0
        #: Optional injected :class:`~repro.telemetry.Telemetry`.
        self.telemetry = None
        self._previous: np.ndarray | None = None

    def corrupt(self, feature: np.ndarray) -> np.ndarray:
        """Return ``feature`` or a corrupted stand-in, per the schedule."""
        stash = self._previous
        self._previous = feature
        if self.rate <= 0 or self.rng.random() >= self.rate:
            return feature
        self.n_corrupted += 1
        if self.telemetry is not None:
            self.telemetry.count("faults.corrupted_features")
        if self.mode == "nan":
            return np.full_like(feature, np.nan)
        if stash is None or stash.shape != feature.shape:
            return feature  # nothing to swap with yet
        return stash.copy()


class FrameDropInjector:
    """Blanks whole detection frames, simulating feed hiccups.

    Dropped frames become empty lists — the frame still exists (indices
    stay aligned with the ground truth) but carries no detections, exactly
    what a decoder stall or network blip produces upstream of the tracker.

    Args:
        rng: injected randomness source.
        rate: per-frame drop probability.
    """

    def __init__(self, rng: np.random.Generator, rate: float = 0.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rng = rng
        self.rate = rate
        self.n_dropped = 0
        #: Optional injected :class:`~repro.telemetry.Telemetry`.
        self.telemetry = None

    def apply(self, frames: list[list]) -> list[list]:
        """Return a copy of ``frames`` with a seeded subset blanked."""
        if self.rate <= 0:
            return [list(frame) for frame in frames]
        out: list[list] = []
        for frame in frames:
            if self.rng.random() < self.rate:
                self.n_dropped += 1
                if self.telemetry is not None:
                    self.telemetry.count("faults.dropped_frames")
                out.append([])
            else:
                out.append(list(frame))
        return out


class ArmedCrash:
    """A live countdown for one window: raises after ``calls_left`` ticks.

    The crash fires exactly once; subsequent ticks pass, so the retried
    window completes.  This models "the worker died once, the replacement
    survived".
    """

    def __init__(self, calls_left: int, window_index: int) -> None:
        if calls_left < 0:
            raise ValueError("calls_left must be non-negative")
        self.calls_left = calls_left
        self.window_index = window_index
        self.fired = False

    def tick(self) -> None:
        """Count one scorer call; raise :class:`WindowCrashError` at zero."""
        if self.fired:
            return
        if self.calls_left <= 0:
            self.fired = True
            raise WindowCrashError(
                f"injected crash in window {self.window_index}"
            )
        self.calls_left -= 1


class WindowCrashInjector:
    """Decides, per window, whether and when the worker crashes.

    Args:
        rng: injected randomness source.
        crash_rate: per-window probability of a crash.
        min_calls: earliest scorer call at which a crash may fire.
        max_calls: latest scorer call at which a crash may fire.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        crash_rate: float = 0.0,
        min_calls: int = 5,
        max_calls: int = 200,
    ) -> None:
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError("crash_rate must be in [0, 1]")
        if min_calls < 0 or max_calls < min_calls:
            raise ValueError("need 0 <= min_calls <= max_calls")
        self.rng = rng
        self.crash_rate = crash_rate
        self.min_calls = min_calls
        self.max_calls = max_calls
        self.n_armed = 0
        #: Optional injected :class:`~repro.telemetry.Telemetry`.
        self.telemetry = None

    def arm(self, window_index: int) -> ArmedCrash | None:
        """Draw this window's fate; return a countdown or ``None``."""
        if self.crash_rate <= 0 or self.rng.random() >= self.crash_rate:
            return None
        calls = int(self.rng.integers(self.min_calls, self.max_calls + 1))
        self.n_armed += 1
        if self.telemetry is not None:
            self.telemetry.count("faults.armed_crashes")
        return ArmedCrash(calls, window_index)


class FaultyReidModel:
    """A ReID model wrapper that injects call faults and corrupted features.

    Drop-in for :class:`~repro.reid.model.SimReIDModel` at the
    :class:`~repro.reid.scorer.ReidScorer` seam: the scorer only calls
    ``extract``.  Call faults are decided *before* the wrapped model runs,
    so a failed call never advances the model's noise RNG — retries stay
    bit-deterministic.

    Args:
        model: the wrapped extractor.
        call_injector: optional failure/timeout schedule.
        corruption_injector: optional feature-corruption schedule.
    """

    def __init__(
        self,
        model,
        call_injector: ReidCallFaultInjector | None = None,
        corruption_injector: FeatureCorruptionInjector | None = None,
    ) -> None:
        self.model = model
        self.call_injector = call_injector
        self.corruption_injector = corruption_injector

    def extract(self, detection) -> np.ndarray:
        """Extract a feature, subject to the injected fault schedules."""
        if self.call_injector is not None:
            self.call_injector.check()
        feature = self.model.extract(detection)
        if self.corruption_injector is not None:
            feature = self.corruption_injector.corrupt(feature)
        return feature

    def rng_state(self) -> dict:
        """Joint RNG state of the wrapped model and every injector.

        Used by the checkpoint layer so a resumed window replays the same
        fault schedule the crashed run saw.
        """
        state: dict = {}
        inner = getattr(self.model, "rng_state", None)
        if callable(inner):
            state["model"] = inner()
        if self.call_injector is not None:
            state["call"] = dict(self.call_injector.rng.bit_generator.state)
        if self.corruption_injector is not None:
            state["corruption"] = dict(
                self.corruption_injector.rng.bit_generator.state
            )
            stash = self.corruption_injector._previous
            state["corruption_prev"] = (
                None if stash is None else [float(x) for x in stash]
            )
        return state

    def set_rng_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`rng_state`."""
        inner = getattr(self.model, "set_rng_state", None)
        if callable(inner) and "model" in state:
            inner(state["model"])
        if self.call_injector is not None and "call" in state:
            self.call_injector.rng.bit_generator.state = state["call"]
        if self.corruption_injector is not None and "corruption" in state:
            self.corruption_injector.rng.bit_generator.state = state[
                "corruption"
            ]
            stash = state.get("corruption_prev")
            self.corruption_injector._previous = (
                None if stash is None else np.asarray(stash, dtype=float)
            )
