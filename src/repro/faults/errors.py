"""Exception taxonomy of the fault-injection subsystem.

Every injected fault derives from :class:`InjectedFault` so tests and the
resilience layer can distinguish deliberate chaos from genuine bugs.  The
hierarchy mirrors how a real serving stack fails around an external ReID
service:

* :class:`ReidFaultError` — the ReID call itself failed (service error,
  connection reset); retryable.
* :class:`ReidTimeoutError` — the call timed out; retryable, but the
  caller already *paid* for the wait, so the error carries a simulated
  ``penalty_ms`` the resilience layer charges to the cost clock.
* :class:`WindowCrashError` — the whole window worker died mid-run;
  not retryable at the call level, only by re-running the window (ideally
  from a checkpoint — see :mod:`repro.resilience.checkpoint`).
"""

from __future__ import annotations


class InjectedFault(RuntimeError):
    """Base class of every deliberately injected failure."""


class ReidFaultError(InjectedFault):
    """A simulated ReID service call failed (transient, retryable)."""


class ReidTimeoutError(ReidFaultError):
    """A simulated ReID call timed out after ``penalty_ms`` of waiting.

    Args:
        message: human-readable description.
        penalty_ms: simulated milliseconds the caller waited before the
            timeout fired; the resilience layer charges this to the
            :class:`~repro.reid.cost.CostModel` so timeouts are never free.
    """

    def __init__(self, message: str, penalty_ms: float = 0.0) -> None:
        super().__init__(message)
        if penalty_ms < 0:
            raise ValueError("penalty_ms must be non-negative")
        self.penalty_ms = float(penalty_ms)


class WindowCrashError(InjectedFault):
    """The worker processing one window died mid-run."""
