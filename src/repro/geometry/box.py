"""Axis-aligned bounding boxes.

A :class:`BBox` is stored in ``(x1, y1, x2, y2)`` corner format with floats,
matching the convention of the MOT benchmark tooling the paper builds on.
Helper constructors convert from center/size and top-left/size formats used
by the motion models and trackers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box in image coordinates.

    Attributes:
        x1: left edge.
        y1: top edge.
        x2: right edge (must satisfy ``x2 >= x1``).
        y2: bottom edge (must satisfy ``y2 >= y1``).
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"degenerate bbox: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    @classmethod
    def from_center(cls, cx: float, cy: float, w: float, h: float) -> "BBox":
        """Build a box from its center point and width/height."""
        if w < 0 or h < 0:
            raise ValueError(f"negative bbox size: w={w}, h={h}")
        return cls(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)

    @classmethod
    def from_tlwh(cls, x: float, y: float, w: float, h: float) -> "BBox":
        """Build a box from its top-left corner and width/height."""
        if w < 0 or h < 0:
            raise ValueError(f"negative bbox size: w={w}, h={h}")
        return cls(x, y, x + w, y + h)

    @property
    def width(self) -> float:
        """Box width ``x2 - x1``."""
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        """Box height ``y2 - y1``."""
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        """Box area ``width * height``."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Center coordinates ``Φ(b)`` used for spatial distances (§IV-C)."""
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Width over height; infinite for zero-height boxes."""
        if self.height == 0:
            return math.inf
        return self.width / self.height

    def to_tlwh(self) -> tuple[float, float, float, float]:
        """As an ``(x, y, w, h)`` top-left/size tuple."""
        return (self.x1, self.y1, self.width, self.height)

    def to_xyxy(self) -> tuple[float, float, float, float]:
        """As an ``(x1, y1, x2, y2)`` corner tuple."""
        return (self.x1, self.y1, self.x2, self.y2)

    def translated(self, dx: float, dy: float) -> "BBox":
        """Return a copy shifted by ``(dx, dy)``."""
        return BBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled(self, factor: float) -> "BBox":
        """Return a copy scaled about its center by ``factor``."""
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        cx, cy = self.center
        return BBox.from_center(cx, cy, self.width * factor, self.height * factor)

    def intersection(self, other: "BBox") -> "BBox | None":
        """Overlapping region with ``other``, or ``None`` if disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return None
        return BBox(x1, y1, x2, y2)

    def contains_point(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside the box (inclusive)."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2


def center_distance(a: BBox, b: BBox) -> float:
    """Euclidean distance between box centers.

    This is the paper's spatial distance ``DisS`` ingredient
    ``‖Φ(b_a) − Φ(b_b)‖₂`` (Algorithm 3).
    """
    (ax, ay), (bx, by) = a.center, b.center
    return math.hypot(ax - bx, ay - by)


def clip_bbox(box: BBox, width: float, height: float) -> BBox | None:
    """Clip ``box`` to an image of the given size.

    Returns ``None`` when the box lies entirely outside the image, which the
    detection simulator treats as "object not visible".
    """
    x1 = min(max(box.x1, 0.0), width)
    y1 = min(max(box.y1, 0.0), height)
    x2 = min(max(box.x2, 0.0), width)
    y2 = min(max(box.y2, 0.0), height)
    if x2 <= x1 or y2 <= y1:
        return None
    return BBox(x1, y1, x2, y2)
