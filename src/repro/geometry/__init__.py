"""Geometric primitives shared across the library.

The unit of currency throughout :mod:`repro` is the axis-aligned bounding box
(:class:`BBox`).  Everything the paper's algorithms consume — spatial
distances for BetaInit, IoU for tracker association and ground-truth
matching — is built from the helpers in this package.
"""

from repro.geometry.box import BBox, center_distance, clip_bbox
from repro.geometry.iou import iou, iou_matrix, pairwise_center_distances

__all__ = [
    "BBox",
    "center_distance",
    "clip_bbox",
    "iou",
    "iou_matrix",
    "pairwise_center_distances",
]
