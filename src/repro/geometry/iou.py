"""Intersection-over-union and vectorized pairwise geometry.

IoU drives (a) tracker association costs (SORT and friends) and (b) the
CLEAR-MOT ground-truth matching used to label polyonymous track pairs.
The matrix forms operate on ``(N, 4)`` float arrays in ``xyxy`` layout so the
trackers can stay vectorized on dense scenes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.box import BBox


def iou(a: BBox, b: BBox) -> float:
    """Intersection-over-union of two boxes, in ``[0, 1]``."""
    inter = a.intersection(b)
    if inter is None:
        return 0.0
    inter_area = inter.area
    union = a.area + b.area - inter_area
    if union <= 0:
        return 0.0
    return inter_area / union


def boxes_to_array(boxes: list[BBox]) -> np.ndarray:
    """Stack boxes into an ``(N, 4)`` xyxy array (empty-safe)."""
    if not boxes:
        return np.zeros((0, 4), dtype=np.float64)
    return np.asarray([b.to_xyxy() for b in boxes], dtype=np.float64)


def iou_matrix(boxes_a: list[BBox], boxes_b: list[BBox]) -> np.ndarray:
    """Pairwise IoU between two box lists as an ``(len(a), len(b))`` array."""
    arr_a = boxes_to_array(boxes_a)
    arr_b = boxes_to_array(boxes_b)
    if arr_a.shape[0] == 0 or arr_b.shape[0] == 0:
        return np.zeros((arr_a.shape[0], arr_b.shape[0]), dtype=np.float64)

    x1 = np.maximum(arr_a[:, None, 0], arr_b[None, :, 0])
    y1 = np.maximum(arr_a[:, None, 1], arr_b[None, :, 1])
    x2 = np.minimum(arr_a[:, None, 2], arr_b[None, :, 2])
    y2 = np.minimum(arr_a[:, None, 3], arr_b[None, :, 3])

    inter = np.clip(x2 - x1, 0.0, None) * np.clip(y2 - y1, 0.0, None)
    area_a = (arr_a[:, 2] - arr_a[:, 0]) * (arr_a[:, 3] - arr_a[:, 1])
    area_b = (arr_b[:, 2] - arr_b[:, 0]) * (arr_b[:, 3] - arr_b[:, 1])
    union = area_a[:, None] + area_b[None, :] - inter

    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(union > 0, inter / union, 0.0)
    return result


def pairwise_center_distances(
    boxes_a: list[BBox], boxes_b: list[BBox]
) -> np.ndarray:
    """Pairwise Euclidean distances between box centers."""
    arr_a = boxes_to_array(boxes_a)
    arr_b = boxes_to_array(boxes_b)
    centers_a = (arr_a[:, :2] + arr_a[:, 2:]) / 2.0
    centers_b = (arr_b[:, :2] + arr_b[:, 2:]) / 2.0
    if centers_a.shape[0] == 0 or centers_b.shape[0] == 0:
        return np.zeros((centers_a.shape[0], centers_b.shape[0]))
    diff = centers_a[:, None, :] - centers_b[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))
