"""Command-line driver: regenerate any paper figure from the terminal.

Usage::

    python -m repro.experiments fig3              # REC-K curves
    python -m repro.experiments fig11 --videos 3  # polyonymous rates
    python -m repro.experiments faults            # chaos matrix
    python -m repro.experiments telemetry --synthetic   # per-window metrics
    python -m repro.experiments telemetry --workers 4   # sharded ingestion
    python -m repro.experiments parallel --workers 4    # speedup report
    python -m repro.experiments serve --frames 600      # streaming service
    python -m repro.experiments serve --kill-after 2    # kill + resume demo
    python -m repro.experiments serve --ledger-out ledger.jsonl \\
        --metrics-out metrics.txt                       # observed session
    python -m repro.experiments explain --ledger ledger.jsonl --pair 3 7
    python -m repro.experiments monitor --frames 600    # live dashboard
    python -m repro.experiments gate --current benchmarks/results/bench_summary.json
    python -m repro.experiments perf --smoke      # batched hot-path check
    python -m repro.experiments scenarios --smoke # regime-sweep matrix
    python -m repro.experiments scenarios --smoke --gate \\
        --matrix-out /tmp/matrix.json             # CI scenario gate
    python -m repro.experiments list              # show available figures

Each figure runs at the same laptop scale as the benchmark suite and
prints the reproduced rows.  ``telemetry`` runs one fully-instrumented
ingestion and dumps the per-window counters, spans and hotspots;
``gate`` compares a ``bench_summary.json`` against the committed
baseline and exits non-zero on a regression (the CI bench gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import figures
from repro.experiments.ascii_plot import rec_fps_plot
from repro.experiments.prep import prepare_dataset
from repro.experiments.reporting import format_table

_SCALES = {
    "mot17": dict(n_frames=700),
    "kitti": dict(n_frames=600),
    "pathtrack": dict(n_frames=1400),
}


def _datasets(n_videos: int):
    return {
        name: prepare_dataset(name, n_videos, seed=0, **scale)
        for name, scale in _SCALES.items()
    }


def _mot17(n_videos: int):
    return prepare_dataset(n_videos=n_videos, preset="mot17", seed=0,
                           n_frames=700)


def run_fig3(args) -> str:
    """Render the Figure 3 (REC@K) table."""
    curves = figures.fig3_rec_k(_datasets(args.videos))
    rows = [
        [dataset, k, rec]
        for dataset, points in curves.items()
        for k, rec in points
    ]
    return format_table(["dataset", "K", "REC"], rows, "Figure 3 — REC-K")


def run_fig4(args) -> str:
    """Render the Figure 4 (runtime scaling) table."""
    rows = figures.fig4_runtime_scaling()
    return format_table(
        ["frames", "pairs", "BL seconds"],
        [list(r) for r in rows],
        "Figure 4 — BL scaling",
    )


def run_fig5(args) -> str:
    """Render the Figure 5 (REC vs FPS) table."""
    results = figures.fig5_rec_fps(_datasets(args.videos))
    rows = [
        [dataset, method, p.parameter, p.rec, p.fps]
        for dataset, methods in results.items()
        for method, points in methods.items()
        for p in points
    ]
    table = format_table(
        ["dataset", "method", "param", "REC", "FPS"], rows,
        "Figure 5 — REC-FPS",
    )
    plots = "\n\n".join(
        rec_fps_plot(methods, title=f"Figure 5 — {dataset}")
        for dataset, methods in results.items()
    )
    return f"{table}\n\n{plots}"


def run_fig6(args) -> str:
    """Render the Figure 6 (batched variants) table."""
    results = figures.fig6_batched(_mot17(args.videos))
    rows = [
        [method, p.parameter, p.rec, p.fps]
        for method, points in results.items()
        for p in points
    ]
    table = format_table(
        ["method", "param", "REC", "FPS"], rows, "Figure 6 — batched"
    )
    plot = rec_fps_plot(results, title="Figure 6 — batched (MOT-17-like)")
    return f"{table}\n\n{plot}"


def run_fig7(args) -> str:
    """Render the Figure 7 (tau_max sweep) table."""
    rows = figures.fig7_tau_sweep(_mot17(args.videos))
    return format_table(
        ["tau_max", "seconds", "REC"],
        [list(r) for r in rows],
        "Figure 7 — TMerge-B vs tau_max",
    )


def run_fig8(args) -> str:
    """Render the Figure 8 (ablation) table."""
    results = figures.fig8_ablation(_mot17(args.videos))
    rows = [
        [variant, p.parameter, p.rec, p.fps]
        for variant, points in results.items()
        for p in points
    ]
    return format_table(
        ["variant", "tau_max", "REC", "FPS"], rows, "Figure 8 — ablation"
    )


def run_fig9(args) -> str:
    """Render the Figure 9 (window length) table."""
    rows = figures.fig9_window_length(n_videos=args.videos, n_frames=1600)
    return format_table(
        ["L", "REC (BL)", "REC (TMerge)"],
        [list(r) for r in rows],
        "Figure 9 — window length",
    )


def run_fig10(args) -> str:
    """Render the Figure 10 (thr_S sweep) table."""
    results = figures.fig10_thr_s(_mot17(args.videos))
    rows = [
        [label, p.parameter, p.rec, p.fps]
        for label, points in results.items()
        for p in points
    ]
    return format_table(
        ["thr_S", "tau_max", "REC", "FPS"], rows, "Figure 10 — thr_S"
    )


def run_fig11(args) -> str:
    """Render the Figure 11 (polyonymous rate) table."""
    rows = figures.fig11_polyonymous_rate(n_videos=args.videos)
    return format_table(
        ["tracker", "rate w/o", "rate w/"],
        [list(r) for r in rows],
        "Figure 11 — polyonymous rates",
    )


def run_fig12(args) -> str:
    """Render the Figure 12 (identity metrics) table."""
    rows = figures.fig12_identity_metrics(n_videos=args.videos)
    return format_table(
        ["metric", "w/o TMerge", "w/ TMerge"],
        [list(r) for r in rows],
        "Figure 12 — identity metrics",
    )


def run_fig13(args) -> str:
    """Render the Figure 13 (query recall) table."""
    rows = figures.fig13_query_recall(n_videos=args.videos)
    return format_table(
        ["query", "w/o TMerge", "w/ TMerge"],
        [list(r) for r in rows],
        "Figure 13 — query recall",
    )


def run_telemetry(args) -> str:
    """Run one instrumented ingestion; render the observability report.

    Everything in this repo is synthetic, so ``--synthetic`` is accepted
    for explicitness (and CI scripts) but is also the only mode.
    """
    from repro.core.pipeline import IngestionPipeline
    from repro.core.tmerge import TMerge
    from repro.synth.datasets import preset_by_name
    from repro.synth.world import simulate_world
    from repro.telemetry import Telemetry
    from repro.track.tracktor import TracktorTracker

    world = simulate_world(
        preset_by_name("mot17").config, args.frames, seed=0
    )
    telemetry = Telemetry()
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(k=0.05, tau_max=400, batch_size=10, seed=3),
        window_length=args.window_length,
        telemetry=telemetry,
        workers=args.workers,
        parallel_backend=args.parallel_backend,
    )
    result = pipeline.run(world)

    rows = []
    for c, metrics in enumerate(result.window_metrics):
        pruned = metrics.get("ulb.accepted", 0.0) + metrics.get(
            "ulb.rejected", 0.0
        )
        rows.append(
            [
                c,
                len(result.window_pairs[c]),
                int(metrics.get("reid.invocations", 0.0)),
                int(metrics.get("cache.hits", 0.0)),
                int(pruned),
                round(metrics.get("cost.simulated_ms", 0.0), 1),
            ]
        )
    table = format_table(
        [
            "window",
            "pairs",
            "reid invocations",
            "cache hits",
            "ulb pruned",
            "simulated ms",
        ],
        rows,
        "Telemetry — per-window counters",
    )
    spans = telemetry.tracer.spans
    footer = (
        f"spans recorded: {len(spans)} "
        f"(export with Tracer.export_jsonl; schema in DESIGN.md §8)"
    )
    return "\n\n".join([table, telemetry.report(), footer])


def run_parallel(args) -> str:
    """Time the window-sharded engine against its serial execution.

    Runs the same instrumented ingestion once with ``workers=1`` and
    once with the requested worker count, verifies the results are
    bit-identical (the engine's core guarantee), and reports wall-clock
    speedup.  Wall time here is honest measurement, not simulation —
    speedup depends on the machine's core count.
    """
    import time

    from repro.core.pipeline import IngestionPipeline
    from repro.core.tmerge import TMerge
    from repro.synth.datasets import preset_by_name
    from repro.synth.world import simulate_world
    from repro.track.tracktor import TracktorTracker

    world = simulate_world(
        preset_by_name("mot17").config, args.frames, seed=0
    )
    n_workers = args.workers or 4

    def measure(workers: int):
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.05, tau_max=400, batch_size=10, seed=3),
            window_length=args.window_length,
            workers=workers,
            parallel_backend=args.parallel_backend,
        )
        start = time.perf_counter()
        result = pipeline.run(world)
        return time.perf_counter() - start, result

    def fingerprint(result):
        return (
            [tuple(sorted(r.candidate_keys)) for r in result.window_results],
            [tuple(sorted(r.scores.items())) for r in result.window_results],
            [r.degraded for r in result.window_results],
            result.cost.state_dict(),
            dict(result.id_map),
        )

    serial_s, serial = measure(1)
    parallel_s, parallel = measure(n_workers)
    if fingerprint(serial) != fingerprint(parallel):
        raise AssertionError(
            "parallel run diverged from workers=1 — determinism bug"
        )
    rows = [
        [1, round(serial_s, 3), 1.0],
        [
            n_workers,
            round(parallel_s, 3),
            round(serial_s / parallel_s, 2) if parallel_s > 0 else float("inf"),
        ],
    ]
    table = format_table(
        ["workers", "wall seconds", "speedup"],
        rows,
        f"Parallel engine — {args.parallel_backend} backend, "
        f"{len(serial.windows)} windows, results bit-identical",
    )
    footer = (
        f"windows: {len(serial.windows)}, "
        f"candidates: {len(serial.selected_pairs)}, "
        f"simulated merge seconds: {serial.total_simulated_seconds:.1f}"
    )
    return f"{table}\n\n{footer}"


def run_serve(args) -> str:
    """Drive the streaming ingestion service over a synthetic feed.

    Builds a seeded event feed (bounded arrival disorder, optional fault
    profile), runs the watermark-driven service over it, and reports the
    per-window emissions plus the service counters.  With ``--kill-after
    N`` the service is stopped dead right after its N-th window emission
    (the simulated SIGKILL at a window boundary), rebuilt from its
    checkpoint and resumed; the report then covers both runs and
    verifies that the stitched emissions match an uninterrupted
    reference bit-for-bit — the durable-restart guarantee, demonstrated
    live.
    """
    from repro.core.tmerge import TMerge
    from repro.faults import fault_profile
    from repro.provenance import DecisionLedger
    from repro.resilience import CheckpointStore
    from repro.streaming import (
        BackpressurePolicy,
        StreamingIngestionService,
        SyntheticFeedSource,
    )
    from repro.synth.datasets import preset_by_name
    from repro.synth.world import simulate_world
    from repro.telemetry import Telemetry, render_openmetrics
    from repro.track.tracktor import TracktorTracker

    world = simulate_world(
        preset_by_name("mot17").config, args.frames, seed=0
    )
    profile = (
        fault_profile(args.profile, seed=args.fault_seed)
        if args.profile
        else None
    )
    source = SyntheticFeedSource(
        world,
        disorder_ms=args.disorder_ms,
        disorder_seed=3,
        fault_profile=profile,
    )
    policy = BackpressurePolicy(
        mode=args.policy,
        capacity=args.queue_capacity,
        latency_slo_ms=args.latency_slo,
    )
    ledger = DecisionLedger() if args.ledger_out else None
    telemetry = Telemetry() if args.metrics_out else None

    def service(
        store: CheckpointStore, observed: bool = True
    ) -> StreamingIngestionService:
        return StreamingIngestionService(
            TracktorTracker(),
            TMerge(k=0.05, tau_max=400, batch_size=10, seed=3),
            window_length=args.window_length,
            allowed_lateness=args.lateness,
            max_open_windows=args.max_open_windows,
            policy=policy,
            workers=args.workers or 1,
            parallel_backend=args.parallel_backend,
            fault_profile=profile,
            store=store,
            telemetry=telemetry if observed else None,
            ledger=ledger if observed else None,
        )

    notes = []
    if args.kill_after is not None:
        # The uninterrupted reference stays unobserved: the exported
        # ledger/metrics must describe the actual (killed + resumed)
        # session, not a doubled recording.
        reference = service(CheckpointStore(), observed=False).run(source)
        store = CheckpointStore()
        first = service(store).run(
            source, stop_after_windows=args.kill_after
        )
        result = service(store).run(source)
        stitched = first.fingerprints() + result.fingerprints()
        if stitched != reference.fingerprints():
            raise AssertionError(
                "resumed run diverged from uninterrupted — restart bug"
            )
        emissions = first.emissions + result.emissions
        counters = result.counters
        peak = max(first.peak_open_windows, result.peak_open_windows)
        notes.append(
            f"killed after {len(first.emissions)} windows at offset "
            f"{first.position}, resumed from checkpoint: "
            f"{len(result.emissions)} more windows, stitched emissions "
            "bit-identical to uninterrupted run"
        )
    else:
        result = service(CheckpointStore()).run(source)
        emissions = result.emissions
        counters = result.counters
        peak = result.peak_open_windows
    rows = [
        [
            e.index,
            f"[{e.window.start}:{e.window.end}]",
            e.n_tracks,
            e.result.n_pairs,
            len(e.result.candidates),
            "yes" if e.result.degraded else "",
            round(e.lag_ms, 1),
        ]
        for e in emissions
    ]
    table = format_table(
        ["window", "span", "tracks", "pairs", "candidates", "degraded",
         "lag ms"],
        rows,
        f"Streaming service — policy {policy.mode}, "
        f"lateness {args.lateness}, "
        f"profile {args.profile or 'none'}",
    )
    counter_text = ", ".join(
        f"{name.removeprefix('stream.')}={value:g}"
        for name, value in sorted(counters.items())
    )
    footer = (
        f"peak open windows: {peak} (bound {args.max_open_windows}); "
        f"{counter_text}"
    )
    if ledger is not None:
        ledger.export_jsonl(args.ledger_out)
        notes.append(
            f"decision ledger: {len(ledger)} events -> {args.ledger_out}"
        )
    if telemetry is not None:
        Path(args.metrics_out).write_text(
            render_openmetrics(telemetry.metrics)
        )
        notes.append(f"OpenMetrics snapshot -> {args.metrics_out}")
    return "\n".join([table, "", footer] + notes)


def run_explain(args) -> int:
    """Reconstruct one pair's decision chain from a ledger export.

    Reads a JSONL ledger (``serve --ledger-out`` or
    :meth:`~repro.provenance.DecisionLedger.export_jsonl`), finds the
    requested track pair and prints every recorded decision that touched
    it — Thompson draws with posterior before/after, ULB accept/reject
    verdicts with the Hoeffding radii in force, degradations, faults and
    the final selection — ending in the pair's verdict.
    """
    from repro.provenance import (
        explain_pair,
        load_events_jsonl,
        windows_containing,
    )

    events = load_events_jsonl(args.ledger)
    pair = (args.pair[0], args.pair[1])
    label = f"{pair[0]}-{pair[1]}"
    try:
        chain = explain_pair(events, pair, window=args.window)
    except KeyError:
        print(f"pair {label} not found in {args.ledger}", file=sys.stderr)
        return 1
    except ValueError:
        windows = windows_containing(events, pair)
        print(
            f"pair {label} appears in windows {windows}; "
            "disambiguate with --window",
            file=sys.stderr,
        )
        return 1
    print(chain.render())
    return 0


def run_monitor(args) -> int:
    """Live-monitor a streaming session, one frame per window emission.

    Runs the same synthetic feed as ``serve`` but drives the service
    through checkpoint/resume cycles — one per window — rendering a
    dashboard frame after each emission: watermark and queue gauges,
    merge-latency percentiles, the window's merge decisions from the
    ledger, and the lifetime counters.  What it shows is exactly the
    state a crashed-and-restarted service would rebuild.
    """
    from repro.core.tmerge import TMerge
    from repro.experiments.monitor import monitor_steps
    from repro.faults import fault_profile
    from repro.provenance import DecisionLedger
    from repro.resilience import CheckpointStore
    from repro.streaming import (
        BackpressurePolicy,
        StreamingIngestionService,
        SyntheticFeedSource,
    )
    from repro.synth.datasets import preset_by_name
    from repro.synth.world import simulate_world
    from repro.telemetry import Telemetry
    from repro.track.tracktor import TracktorTracker

    world = simulate_world(
        preset_by_name("mot17").config, args.frames, seed=0
    )
    profile = (
        fault_profile(args.profile, seed=args.fault_seed)
        if args.profile
        else None
    )
    source = SyntheticFeedSource(
        world,
        disorder_ms=args.disorder_ms,
        disorder_seed=3,
        fault_profile=profile,
    )
    policy = BackpressurePolicy(
        mode=args.policy,
        capacity=args.queue_capacity,
        latency_slo_ms=args.latency_slo,
    )
    store = CheckpointStore()
    telemetry = Telemetry()
    ledger = DecisionLedger()

    def make_service() -> StreamingIngestionService:
        return StreamingIngestionService(
            TracktorTracker(),
            TMerge(k=0.05, tau_max=400, batch_size=10, seed=3),
            window_length=args.window_length,
            allowed_lateness=args.lateness,
            max_open_windows=args.max_open_windows,
            policy=policy,
            workers=args.workers or 1,
            parallel_backend=args.parallel_backend,
            fault_profile=profile,
            store=store,
            telemetry=telemetry,
            ledger=ledger,
        )

    steps = monitor_steps(
        make_service,
        source,
        registry=telemetry.metrics,
        ledger=ledger,
        max_steps=args.steps,
    )
    last = None
    for step in steps:
        print(step.frame)
        print()
        last = step
    if last is not None and last.done:
        print(f"feed exhausted after {last.step} window(s)")
    return 0


def run_gate(args) -> int:
    """Compare a bench summary to the baseline; return the exit status."""
    from repro.experiments.bench_summary import gate_summary_files

    failures = gate_summary_files(
        args.current, args.baseline, tolerance=args.tolerance
    )
    if failures:
        print("bench gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"bench gate: OK ({args.current} within "
        f"{args.tolerance:.0%} of {args.baseline})"
    )
    return 0


def run_perf(args) -> int:
    """Run the batched hot-path microbench; return the exit status.

    The ``bench-perf`` CI lane: measures scalar vs batched TMerge on the
    same workload, writes ``perf_summary.json``, optionally appends to
    the committed trend file, and fails (non-zero exit) if the batched
    sampler is slower per observation than the scalar one.
    """
    from repro.experiments import perf

    summary = perf.run_perf(smoke=args.smoke, repeats=args.repeats)
    print(perf.format_summary(summary))

    out_path = Path(args.output)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\nperf summary written to {out_path}")

    if args.trend:
        perf.append_trend(summary, args.trend)
        print(f"trend record appended to {args.trend}")

    failures = perf.check_summary(summary)
    if failures:
        print("bench-perf: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench-perf: OK (speedup {summary['speedup']:.2f}x >= 1.0)")
    return 0


def run_scenarios(args) -> int:
    """Run the regime-sweep scenario matrix; return the exit status.

    The ``scenario-sweep`` CI lane: runs every named scenario through
    the batch pipeline and the streaming service, writes the matrix
    document, and with ``--gate`` compares it per scenario against the
    committed baseline (non-zero exit on any single-scenario
    regression).
    """
    from repro.experiments import scenarios as scenario_sweep

    document = scenario_sweep.sweep(
        seed=args.seed,
        smoke=args.smoke,
        only=args.only,
        progress=lambda name: print(f"  ran {name}", file=sys.stderr),
    )
    out_path = scenario_sweep.write_matrix(document, args.matrix_out)
    print(scenario_sweep.format_matrix(document))
    print(f"\nscenario matrix written to {out_path}")
    if args.summary_out:
        merged = scenario_sweep.merge_into_summary(
            document, args.summary_out
        )
        print(f"scenario_matrix record merged into {merged}")
    if args.gate:
        baseline = scenario_sweep.load_matrix(args.matrix_baseline)
        failures = scenario_sweep.gate_matrix(
            document, baseline, tolerance=args.tolerance
        )
        if failures:
            print("scenario gate: FAIL")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"scenario gate: OK ({len(document['scenarios'])} scenarios "
            f"within {args.tolerance:.0%} of {args.matrix_baseline})"
        )
    return 0


def run_faults(args) -> str:
    """Render the chaos matrix: TMerge under injected fault profiles."""
    from repro.experiments.chaos import fault_profile_sweep

    videos = _mot17(args.videos)
    rows = fault_profile_sweep(
        figures.default_quality_merger,
        videos,
        profiles=list(args.profiles),
        fault_seed=args.fault_seed,
    )
    return format_table(
        ["profile", "REC", "FPS", "seconds", "degraded windows"],
        [
            [name, p.rec, p.fps, p.simulated_seconds, p.degraded_windows]
            for name, p in rows
        ],
        "Chaos matrix — TMerge under fault injection",
    )


_RUNNERS = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "faults": run_faults,
    "telemetry": run_telemetry,
    "parallel": run_parallel,
    "serve": run_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a paper figure at laptop scale.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_RUNNERS) + [
            "explain", "gate", "monitor", "perf", "scenarios", "list",
        ],
        help="which figure to regenerate (or: telemetry, explain, "
        "monitor, gate, perf, scenarios, list)",
    )
    parser.add_argument(
        "--videos",
        type=int,
        default=2,
        help="videos per dataset (default 2)",
    )
    parser.add_argument(
        "--profiles",
        nargs="+",
        default=["flaky-reid", "corrupt-features", "window-crash"],
        help="fault profiles for the chaos matrix (faults only)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed of the injected fault schedule (faults only)",
    )
    parser.add_argument(
        "--synthetic",
        action="store_true",
        help="use synthetic data (telemetry only; always true here)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=400,
        help="video length for the telemetry run (telemetry only)",
    )
    parser.add_argument(
        "--window-length",
        type=int,
        default=200,
        help="window length for the telemetry run (telemetry only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="window-sharded engine worker count (telemetry, parallel; "
        "default: serial path, or 4 for the parallel report)",
    )
    parser.add_argument(
        "--parallel-backend",
        choices=["process", "thread"],
        default="process",
        help="pool backend for --workers (default process)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="single fault profile for the streaming service (serve only)",
    )
    parser.add_argument(
        "--policy",
        choices=["block", "drop-oldest", "degrade"],
        default="block",
        help="intake backpressure policy (serve only, default block)",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="intake queue bound in events (serve only, default 64)",
    )
    parser.add_argument(
        "--latency-slo",
        type=float,
        default=None,
        help="simulated latency SLO in ms for the degrade policy "
        "(serve only)",
    )
    parser.add_argument(
        "--disorder-ms",
        type=float,
        default=50.0,
        help="arrival jitter bound in simulated ms (serve only)",
    )
    parser.add_argument(
        "--lateness",
        type=int,
        default=4,
        help="allowed lateness in frames (serve only, default 4)",
    )
    parser.add_argument(
        "--max-open-windows",
        type=int,
        default=8,
        help="resident open-window bound (serve only, default 8)",
    )
    parser.add_argument(
        "--kill-after",
        type=int,
        default=None,
        help="kill the service after N window emissions, then resume "
        "from its checkpoint and verify bit-identity (serve only)",
    )
    parser.add_argument(
        "--ledger-out",
        default=None,
        help="export the session's decision ledger as JSONL to this "
        "path (serve only)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write an OpenMetrics snapshot of the session's metrics "
        "to this path (serve only)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="JSONL ledger export to read (explain only)",
    )
    parser.add_argument(
        "--pair",
        nargs=2,
        type=int,
        metavar=("A", "B"),
        default=None,
        help="track ids of the pair to explain (explain only)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="window index, when the pair appears in several "
        "(explain only)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="stop the monitor after N window emissions "
        "(monitor only, default: run the feed dry)",
    )
    parser.add_argument(
        "--current",
        default="benchmarks/results/bench_summary.json",
        help="summary produced by this run (gate only)",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/baseline_summary.json",
        help="committed baseline summary (gate only)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative regression tolerance (gate only, default 0.05)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the CI smoke workload (perf and scenarios)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per contender, best kept (perf only, default 3)",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/results/perf_summary.json",
        help="where to write the perf summary (perf only)",
    )
    parser.add_argument(
        "--trend",
        default=None,
        help="JSONL trend file to append the perf record to (perf only)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="sweep seed of the scenario matrix (scenarios only, "
        "default 0)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only these named scenarios (scenarios only)",
    )
    parser.add_argument(
        "--matrix-out",
        default="benchmarks/results/scenario_matrix.json",
        help="where to write the scenario matrix document "
        "(scenarios only; the default refreshes the committed baseline)",
    )
    parser.add_argument(
        "--matrix-baseline",
        default="benchmarks/results/scenario_matrix.json",
        help="committed scenario baseline the gate compares against "
        "(scenarios only)",
    )
    parser.add_argument(
        "--summary-out",
        default=None,
        help="bench summary file to fold a scenario_matrix record into "
        "(scenarios only)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="gate the fresh matrix per scenario against "
        "--matrix-baseline; exit non-zero on regression (scenarios only)",
    )
    args = parser.parse_args(argv)
    if args.figure == "list":
        print(
            "available:",
            ", ".join(
                sorted(_RUNNERS)
                + ["explain", "gate", "monitor", "perf", "scenarios"]
            ),
        )
        return 0
    if args.figure == "gate":
        return run_gate(args)
    if args.figure == "perf":
        return run_perf(args)
    if args.figure == "scenarios":
        return run_scenarios(args)
    if args.figure == "explain":
        if args.ledger is None or args.pair is None:
            parser.error("explain requires --ledger and --pair A B")
        return run_explain(args)
    if args.figure == "monitor":
        return run_monitor(args)
    print(_RUNNERS[args.figure](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
