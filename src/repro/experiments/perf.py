"""The ``bench-perf`` lane: batched-vs-scalar hot-path microbenchmark.

Measures the wall-clock cost per ReID observation of the scalar TMerge
sampler against the vectorized batched sampler (TMerge-B, DESIGN.md §13)
on the same MOT-17-like workload at a matched observation budget
(``tau_scalar = B * tau_batched``), and emits a machine-readable
``perf_summary.json`` for the CI ``bench-perf`` lane.

Unlike the pytest bench suite (which gates only machine-independent
metrics), this lane *does* check a wall-clock property — but only the
dimensionless ratio between two runs on the same machine in the same
process: the batched sampler must not be slower per observation than
the scalar one.  Absolute times are recorded for trend inspection
(``benchmarks/results/perf_trend.jsonl``) and never gated.

Run it directly::

    python -m repro.experiments perf --smoke
    python -m repro.experiments perf --trend benchmarks/results/perf_trend.jsonl
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.tmerge import TMerge
from repro.experiments.prep import PreparedVideo, prepare_dataset
from repro.experiments.sweeps import evaluate_merger
from repro.telemetry import Telemetry

#: perf_summary.json schema version (bump on incompatible layout change).
SCHEMA_VERSION = 1

#: Batch size of the batched contender (matches the bench + CI lane).
BATCH_SIZE = 8

#: Observation budget of the scalar run; the batched run gets an equal
#: budget split across batches (``tau = SCALAR_TAU // BATCH_SIZE``).
SCALAR_TAU = 1600
SMOKE_SCALAR_TAU = 800

#: Smoke workload: one short MOT-17-like video (matches the bench suite's
#: ``REPRO_BENCH_SMOKE=1`` scale so numbers line up across lanes).
SMOKE_WORKLOAD = dict(preset="mot17", n_videos=1, seed=0, n_frames=300)
FULL_WORKLOAD = dict(preset="mot17", n_videos=2, seed=0, n_frames=700)


def _measure(
    videos: list[PreparedVideo],
    batch_size: int | None,
    tau_max: int,
) -> dict[str, float]:
    """Run one TMerge configuration; return wall-clock + observation stats.

    Args:
        videos: prepared evaluation videos.
        batch_size: TMerge batch size (``None`` = scalar path).
        tau_max: per-window sampling budget (iterations).
    """
    telemetry = Telemetry()

    def factory() -> TMerge:
        return TMerge(k=0.1, tau_max=tau_max, batch_size=batch_size, seed=3)

    start = time.perf_counter()
    point = evaluate_merger(factory, videos, telemetry=telemetry)
    wall_s = time.perf_counter() - start
    observations = telemetry.metrics.value("reid.distances")
    return {
        "wall_s": wall_s,
        "observations": observations,
        "ms_per_obs": (
            wall_s * 1000.0 / observations if observations else float("inf")
        ),
        "recall": point.rec,
        "reid_invocations": float(point.reid_invocations),
        "simulated_seconds": point.simulated_seconds,
    }


def run_perf(smoke: bool = True, repeats: int = 3) -> dict[str, Any]:
    """Run the scalar-vs-batched microbench; return the summary record.

    Each contender runs ``repeats`` times and keeps its best (minimum)
    wall clock — the standard microbenchmark noise filter — while the
    deterministic fields (observations, recall, simulated cost) come
    from the first run and are identical across repeats.

    Args:
        smoke: use the CI smoke workload (1 short video) instead of the
            laptop-scale one.
        repeats: timed runs per contender (minimum is reported).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    workload = dict(SMOKE_WORKLOAD if smoke else FULL_WORKLOAD)
    scalar_tau = SMOKE_SCALAR_TAU if smoke else SCALAR_TAU
    preset = str(workload.pop("preset"))
    videos = prepare_dataset(preset, **workload)

    def best_of(batch_size: int | None, tau_max: int) -> dict[str, float]:
        runs = [_measure(videos, batch_size, tau_max) for _ in range(repeats)]
        best = dict(runs[0])
        for run in runs[1:]:
            if run["wall_s"] < best["wall_s"]:
                best["wall_s"] = run["wall_s"]
                best["ms_per_obs"] = run["ms_per_obs"]
        return best

    scalar = best_of(None, scalar_tau)
    batched = best_of(BATCH_SIZE, scalar_tau // BATCH_SIZE)
    speedup = (
        scalar["ms_per_obs"] / batched["ms_per_obs"]
        if batched["ms_per_obs"] > 0
        else float("inf")
    )
    return {
        "schema": SCHEMA_VERSION,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": {"preset": preset, **workload,
                     "scalar_tau": scalar_tau, "smoke": smoke},
        "batch_size": BATCH_SIZE,
        "repeats": repeats,
        "scalar": scalar,
        "batched": batched,
        "speedup": speedup,
    }


def check_summary(summary: dict[str, Any]) -> list[str]:
    """Validate a perf summary; return failure messages (empty = pass).

    The gated property is machine-independent: on the same machine, in
    the same process, the batched sampler must be at least as fast per
    observation as the scalar sampler (speedup >= 1.0).
    """
    failures: list[str] = []
    speedup = summary.get("speedup", 0.0)
    if not speedup >= 1.0:
        failures.append(
            f"batched sampler slower than scalar at B={summary['batch_size']}"
            f": speedup {speedup:.3f} < 1.0 "
            f"(scalar {summary['scalar']['ms_per_obs']:.4f} ms/obs, "
            f"batched {summary['batched']['ms_per_obs']:.4f} ms/obs)"
        )
    for side in ("scalar", "batched"):
        if summary[side]["observations"] <= 0:
            failures.append(f"{side} run recorded zero ReID observations")
    return failures


def append_trend(summary: dict[str, Any], trend_path: str | Path) -> None:
    """Append one compact record to the perf trend JSONL file.

    The trend file is committed, so each line keeps only the fields
    worth diffing across machines and commits; absolute wall clocks are
    context, the speedup ratio is the signal.
    """
    record = {
        "schema": summary["schema"],
        "unix_time": round(summary["unix_time"], 1),
        "python": summary["python"],
        "numpy": summary["numpy"],
        "smoke": summary["workload"]["smoke"],
        "batch_size": summary["batch_size"],
        "scalar_ms_per_obs": round(summary["scalar"]["ms_per_obs"], 5),
        "batched_ms_per_obs": round(summary["batched"]["ms_per_obs"], 5),
        "speedup": round(summary["speedup"], 3),
    }
    path = Path(trend_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def format_summary(summary: dict[str, Any]) -> str:
    """Render the human-readable report printed by the CLI."""
    from repro.experiments.reporting import format_table

    rows = []
    for label, side in (("TMerge (scalar)", "scalar"),
                        (f"TMerge-B{summary['batch_size']}", "batched")):
        stats = summary[side]
        rows.append([
            label,
            int(stats["observations"]),
            round(stats["wall_s"], 3),
            round(stats["ms_per_obs"], 4),
            round(stats["simulated_seconds"], 2),
            round(stats["recall"], 3),
        ])
    table = format_table(
        ["variant", "obs", "wall s", "ms/obs", "sim s", "REC"],
        rows,
        title=(
            "bench-perf — scalar vs batched sampler "
            f"({'smoke' if summary['workload']['smoke'] else 'full'} "
            f"workload, best of {summary['repeats']})"
        ),
    )
    return (
        f"{table}\n\n"
        f"wall-clock speedup per observation: {summary['speedup']:.2f}x "
        f"(numpy {summary['numpy']}, python {summary['python']})"
    )
