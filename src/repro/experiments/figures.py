"""One function per paper table/figure.

Every function returns plain data structures (rows) that the benchmark
suite prints with :func:`repro.experiments.reporting.format_table`.  All
accept scale parameters so the benches can run paper-shaped experiments at
laptop scale; EXPERIMENTS.md records the scales used and the outcomes.

A note on merging for the downstream-quality experiments (Figures 11-13):
per §I/§II the algorithm *identifies* top-⌈K·|P_c|⌉ candidates which are
then "optionally subject to further human inspection"; K budgets that
inspection.  We simulate the inspection step with the ground-truth oracle
(a human confirms true polyonymous pairs and rejects false candidates), so
those figures measure exactly what the paper's do: the quality impact of
the pairs the algorithm *found*.
"""

from __future__ import annotations

from typing import Callable

from repro.core.baseline import BaselineMerger
from repro.core.lcb import LcbMerger
from repro.core.merge import merge_tracks
from repro.core.pairs import PairKey
from repro.core.proportional import ProportionalMerger
from repro.core.tmerge import TMerge
from repro.experiments.prep import PreparedVideo, prepare_dataset
from repro.experiments.sweeps import (
    MethodPoint,
    evaluate_merger,
    fps_at_rec,
    rec_fps_sweep,
)
from repro.metrics.identity import IdentityResult, evaluate_identity
from repro.metrics.matching import polyonymous_rate
from repro.metrics.recall import rec_k_curve
from repro.query.evaluation import (
    cooccurrence_query_recall,
    count_query_recall,
)
from repro.query.queries import CoOccurrenceQuery, CountQuery
from repro.reid import CostModel, ReidScorer, SimReIDModel
from repro.track.deepsort import DeepSortTracker
from repro.track.tracktor import TracktorTracker
from repro.track.uma import UmaTracker

DATASETS = ("mot17", "kitti", "pathtrack")

# Default sweep grids (paper-shaped; benches may shrink them further).
TAU_SWEEP = (2000, 5000, 10000, 20000, 40000)
ETA_SWEEP = (0.0003, 0.001, 0.003, 0.01)
BATCH_TAU_SWEEP = (250, 500, 1000, 2000, 4000)


# ----------------------------------------------------------------------
# Figure 3 — REC-K curves of the exhaustive baseline
# ----------------------------------------------------------------------
def fig3_rec_k(
    videos_by_dataset: dict[str, list[PreparedVideo]],
    ks: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2),
    reid_seed: int = 1,
    telemetry=None,
) -> dict[str, list[tuple[float, float]]]:
    """REC of the top-⌈K·|P_c|⌉ *exact* scores, per dataset.

    Returns ``{dataset: [(K, REC)]}`` with REC averaged over windows that
    contain polyonymous pairs.  ``telemetry`` (optional) aggregates the
    exhaustive scoring's cost counters across all datasets.
    """
    curves: dict[str, list[tuple[float, float]]] = {}
    for dataset, videos in videos_by_dataset.items():
        sums = [0.0] * len(ks)
        counts = [0] * len(ks)
        for video in videos:
            scorer = ReidScorer(
                SimReIDModel(video.world, seed=reid_seed),
                cost=CostModel(telemetry=telemetry),
                telemetry=telemetry,
            )
            for pairs, gt_keys in zip(video.window_pairs, video.window_gt):
                if not pairs or not gt_keys:
                    continue
                result = BaselineMerger(k=1.0).run(pairs, scorer)
                for i, (k, rec) in enumerate(
                    rec_k_curve(pairs, result.scores, gt_keys, list(ks))
                ):
                    if rec is not None:
                        sums[i] += rec
                        counts[i] += 1
        curves[dataset] = [
            (k, sums[i] / counts[i] if counts[i] else 1.0)
            for i, k in enumerate(ks)
        ]
    return curves


# ----------------------------------------------------------------------
# Figure 4 — baseline runtime & pair count vs video length
# ----------------------------------------------------------------------
def fig4_runtime_scaling(
    lengths: tuple[int, ...] = (600, 1200, 1800, 2400),
    preset: str = "pathtrack",
    window_length: int = 2000,
    seed: int = 0,
    reid_seed: int = 1,
) -> list[tuple[int, int, float]]:
    """BL cost growth with video length.

    Returns rows ``(video_frames, accumulated_pairs, bl_seconds)``.
    """
    rows = []
    for length in lengths:
        videos = prepare_dataset(
            preset, 1, seed=seed, n_frames=length, window_length=window_length
        )
        video = videos[0]
        scorer = ReidScorer(
            SimReIDModel(video.world, seed=reid_seed), cost=CostModel()
        )
        n_pairs = 0
        for pairs in video.window_pairs:
            n_pairs += len(pairs)
            if pairs:
                BaselineMerger(k=0.05).run(pairs, scorer)
        rows.append((length, n_pairs, scorer.cost.seconds))
    return rows


# ----------------------------------------------------------------------
# Figures 5/6 — REC-FPS curves, unbatched and batched
# ----------------------------------------------------------------------
def method_sweeps(
    taus: tuple[int, ...] = TAU_SWEEP,
    etas: tuple[float, ...] = ETA_SWEEP,
    k: float = 0.05,
    batch_size: int | None = None,
    batch_taus: tuple[int, ...] = BATCH_TAU_SWEEP,
    seed: int = 3,
) -> dict[str, list[tuple[float, Callable]]]:
    """The standard configuration grids for BL / PS / LCB / TMerge."""
    sweep_taus = batch_taus if batch_size is not None else taus
    return {
        "BL": [(0.0, lambda: BaselineMerger(k=k, batch_size=batch_size))],
        "PS": [
            (
                eta,
                lambda eta=eta: ProportionalMerger(
                    eta=eta, k=k, batch_size=batch_size, seed=seed
                ),
            )
            for eta in etas
        ],
        "LCB": [
            (
                tau,
                lambda tau=tau: LcbMerger(
                    tau_max=tau, k=k, batch_size=batch_size, seed=seed
                ),
            )
            for tau in sweep_taus
        ],
        "TMerge": [
            (
                tau,
                lambda tau=tau: TMerge(
                    k=k, tau_max=tau, batch_size=batch_size, seed=seed
                ),
            )
            for tau in sweep_taus
        ],
    }


def fig5_rec_fps(
    videos_by_dataset: dict[str, list[PreparedVideo]],
    taus: tuple[int, ...] = TAU_SWEEP,
    etas: tuple[float, ...] = ETA_SWEEP,
    reid_seed: int = 1,
) -> dict[str, dict[str, list[MethodPoint]]]:
    """Unbatched REC-FPS curves per dataset (Figure 5)."""
    results: dict[str, dict[str, list[MethodPoint]]] = {}
    for dataset, videos in videos_by_dataset.items():
        sweeps = method_sweeps(taus=taus, etas=etas)
        results[dataset] = {
            name: rec_fps_sweep(factories, videos, reid_seed=reid_seed)
            for name, factories in sweeps.items()
        }
    return results


def fig6_batched(
    videos: list[PreparedVideo],
    batch_sizes: tuple[int, ...] = (10, 100),
    batch_taus: tuple[int, ...] = BATCH_TAU_SWEEP,
    etas: tuple[float, ...] = ETA_SWEEP,
    reid_seed: int = 1,
) -> dict[str, list[MethodPoint]]:
    """Batched REC-FPS curves on one dataset (Figure 6).

    Returns ``{"TMerge-B10": [...], "LCB-B100": [...], ...}``.
    """
    results: dict[str, list[MethodPoint]] = {}
    for batch in batch_sizes:
        sweeps = method_sweeps(
            etas=etas, batch_size=batch, batch_taus=batch_taus
        )
        for name, factories in sweeps.items():
            points = rec_fps_sweep(factories, videos, reid_seed=reid_seed)
            results[f"{name}-B{batch}"] = points
    return results


def table2_fps(
    unbatched: dict[str, list[MethodPoint]],
    batched: dict[str, list[MethodPoint]],
    rec_targets: tuple[float, ...] = (0.80, 0.93),
) -> list[list[object]]:
    """Table II: FPS of every method at fixed REC levels."""
    rows: list[list[object]] = []
    for name, points in list(unbatched.items()) + list(batched.items()):
        row: list[object] = [name]
        for target in rec_targets:
            row.append(fps_at_rec(points, target))
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 7 — TMerge-B runtime & REC vs τ_max
# ----------------------------------------------------------------------
def fig7_tau_sweep(
    videos: list[PreparedVideo],
    taus: tuple[int, ...] = (100, 250, 500, 1000, 2000, 4000),
    batch_size: int = 10,
    reid_seed: int = 1,
) -> list[tuple[int, float, float]]:
    """Rows ``(τ_max, runtime_seconds, REC)`` for TMerge-B (Figure 7)."""
    rows = []
    for tau in taus:
        point = evaluate_merger(
            lambda tau=tau: TMerge(tau_max=tau, batch_size=batch_size, seed=3),
            videos,
            reid_seed=reid_seed,
        )
        rows.append((tau, point.simulated_seconds, point.rec))
    return rows


# ----------------------------------------------------------------------
# Figure 8 — ablation: BetaInit and ULB
# ----------------------------------------------------------------------
def fig8_ablation(
    videos: list[PreparedVideo],
    taus: tuple[int, ...] = (250, 500, 1000, 2000, 4000),
    batch_size: int = 10,
    reid_seed: int = 1,
) -> dict[str, list[MethodPoint]]:
    """REC-FPS curves of TMerge, TMerge−BetaInit and TMerge−ULB."""
    variants = {
        "TMerge": dict(),
        "TMerge w/o BetaInit": dict(thr_s=None),
        "TMerge w/o ULB": dict(use_ulb=False),
    }
    results = {}
    for name, overrides in variants.items():
        factories = [
            (
                tau,
                lambda tau=tau, overrides=overrides: TMerge(
                    tau_max=tau, batch_size=batch_size, seed=3, **overrides
                ),
            )
            for tau in taus
        ]
        results[name] = rec_fps_sweep(factories, videos, reid_seed=reid_seed)
    return results


# ----------------------------------------------------------------------
# Figure 9 — sensitivity to window length L
# ----------------------------------------------------------------------
def fig9_window_length(
    preset: str = "pathtrack",
    lengths: tuple[int, ...] = (1000, 2000, 3000, 4000),
    n_videos: int = 2,
    n_frames: int = 3000,
    draws_per_pair: int = 60,
    batch_size: int = 100,
    k: float = 0.05,
    seed: int = 0,
    reid_seed: int = 1,
) -> list[tuple[int, float, float]]:
    """Rows ``(L, REC_BL, REC_TMerge)`` (Figure 9).

    Recall here is *video-level*: the union of all windows' candidates
    against every polyonymous pair of the video.  With ``L < 2·L_max``
    some fragment pairs span more than two windows, never enter any
    ``P_c``, and are structurally unfindable — capping REC for BL and
    TMerge alike.  TMerge's per-window budget scales with the window's
    pair count (``draws_per_pair``) so that changing ``L`` changes only
    the pairing structure, not the sampling density.
    """
    from repro.experiments.prep import rewindow
    from repro.metrics.matching import video_polyonymous_keys
    from repro.reid import CostModel

    base_videos = prepare_dataset(
        preset, n_videos, seed=seed, n_frames=n_frames,
        window_length=lengths[0],
    )
    video_gt = [
        video_polyonymous_keys(video.tracks, video.assignment)
        for video in base_videos
    ]

    def video_recall(merger_factory, videos) -> float:
        recs = []
        for video, gt in zip(videos, video_gt):
            if not gt:
                continue
            video.reset_sampling()
            scorer = ReidScorer(
                SimReIDModel(video.world, seed=reid_seed), cost=CostModel()
            )
            found: set[PairKey] = set()
            for pairs in video.window_pairs:
                if pairs:
                    found |= (
                        merger_factory(pairs).run(pairs, scorer).candidate_keys
                    )
            recs.append(len(found & gt) / len(gt))
        return sum(recs) / len(recs) if recs else 1.0

    def tmerge_for(pairs):
        budget = max(1, draws_per_pair * len(pairs) // max(batch_size, 1))
        return TMerge(k=k, tau_max=budget, batch_size=batch_size, seed=3)

    rows = []
    for length in lengths:
        videos = [rewindow(video, length) for video in base_videos]
        bl = video_recall(lambda pairs: BaselineMerger(k=k), videos)
        tm = video_recall(tmerge_for, videos)
        rows.append((length, bl, tm))
    return rows


# ----------------------------------------------------------------------
# Figure 10 — sensitivity to thr_S
# ----------------------------------------------------------------------
def fig10_thr_s(
    videos: list[PreparedVideo],
    thresholds: tuple[float | None, ...] = (None, 100.0, 200.0, 300.0),
    taus: tuple[int, ...] = (250, 500, 1000, 2000),
    batch_size: int = 10,
    reid_seed: int = 1,
) -> dict[str, list[MethodPoint]]:
    """REC-FPS curves of TMerge for several BetaInit thresholds."""
    results = {}
    for thr in thresholds:
        label = "no BetaInit" if thr is None else f"thr_S={thr:g}"
        factories = [
            (
                tau,
                lambda tau=tau, thr=thr: TMerge(
                    tau_max=tau, thr_s=thr, batch_size=batch_size, seed=3
                ),
            )
            for tau in taus
        ]
        results[label] = rec_fps_sweep(factories, videos, reid_seed=reid_seed)
    return results


# ----------------------------------------------------------------------
# Figures 11-13 — downstream quality with and without TMerge
# ----------------------------------------------------------------------
def _identify_and_confirm(
    video: PreparedVideo,
    merger_factory: Callable,
    reid_seed: int = 1,
) -> set[PairKey]:
    """Run a merger over every window; return oracle-confirmed candidates.

    The oracle stands in for the paper's human-inspection step (§I):
    candidates the algorithm surfaces are checked and only true polyonymous
    pairs are merged.
    """
    video.reset_sampling()
    scorer = ReidScorer(
        SimReIDModel(video.world, seed=reid_seed), cost=CostModel()
    )
    confirmed: set[PairKey] = set()
    for pairs, gt_keys in zip(video.window_pairs, video.window_gt):
        if not pairs:
            continue
        result = merger_factory().run(pairs, scorer)
        confirmed |= result.candidate_keys & gt_keys
    return confirmed


def default_quality_merger() -> TMerge:
    """The TMerge configuration used by the downstream-quality figures."""
    return TMerge(k=0.05, tau_max=2000, batch_size=100, seed=3)


def fig11_polyonymous_rate(
    preset: str = "mot17",
    n_videos: int = 2,
    n_frames: int = 700,
    seed: int = 0,
    reid_seed: int = 1,
) -> list[tuple[str, float, float]]:
    """Rows ``(tracker, rate_without, rate_with_tmerge)`` (Figure 11)."""
    trackers = {
        "Tracktor": TracktorTracker,
        "DeepSORT": DeepSortTracker,
        "UMA": UmaTracker,
    }
    rows = []
    for name, tracker_cls in trackers.items():
        without_sum = 0.0
        with_sum = 0.0
        for i in range(n_videos):
            video = _prepare_with_tracker(
                preset, seed + i, n_frames, tracker_cls
            )
            resolved = _identify_and_confirm(
                video, default_quality_merger, reid_seed
            )
            without_sum += polyonymous_rate(
                video.window_pairs, video.assignment
            )
            with_sum += polyonymous_rate(
                video.window_pairs, video.assignment, resolved=resolved
            )
        rows.append((name, without_sum / n_videos, with_sum / n_videos))
    return rows


def _prepare_with_tracker(preset, seed, n_frames, tracker_cls):
    """Prepare a video with a tracker class, injecting the appearance
    embedder for the trackers that use one."""
    from repro.experiments.prep import prepare_video
    from repro.synth.datasets import preset_by_name
    from repro.synth.world import simulate_world

    if tracker_cls in (DeepSortTracker, UmaTracker):
        # Appearance trackers need an embedder bound to this video's world,
        # so simulate it first, then hand the tracker its cheap head.
        preset_obj = preset_by_name(preset) if isinstance(preset, str) else preset
        world = simulate_world(preset_obj.config, n_frames, seed=seed)
        model = SimReIDModel(world, seed=seed + 7)
        tracker = tracker_cls(embedder=model.tracker_embedder())
        return prepare_video(
            preset, seed=seed, n_frames=n_frames, tracker=tracker
        )
    return prepare_video(
        preset, seed=seed, n_frames=n_frames, tracker=tracker_cls()
    )


def fig12_identity_metrics(
    preset: str = "mot17",
    n_videos: int = 2,
    n_frames: int = 700,
    seed: int = 0,
    reid_seed: int = 1,
) -> list[tuple[str, float, float]]:
    """Rows ``(metric, without, with_tmerge)`` for IDF1/IDP/IDR (Fig. 12)."""
    sums = {"IDF1": [0.0, 0.0], "IDP": [0.0, 0.0], "IDR": [0.0, 0.0]}
    for i in range(n_videos):
        video = _prepare_with_tracker(
            preset, seed + i, n_frames, TracktorTracker
        )
        confirmed = _identify_and_confirm(
            video, default_quality_merger, reid_seed
        )
        merged, _ = merge_tracks(video.tracks, sorted(confirmed))
        before = evaluate_identity(video.tracks, video.world)
        after = evaluate_identity(merged, video.world)
        for name, pair in (
            ("IDF1", (before.idf1, after.idf1)),
            ("IDP", (before.idp, after.idp)),
            ("IDR", (before.idr, after.idr)),
        ):
            sums[name][0] += pair[0]
            sums[name][1] += pair[1]
    return [
        (name, values[0] / n_videos, values[1] / n_videos)
        for name, values in sums.items()
    ]


def fig13_query_recall(
    preset: str = "mot17",
    n_videos: int = 2,
    n_frames: int = 700,
    count_min_frames: int = 200,
    cooccur_min_frames: int = 50,
    seed: int = 0,
    reid_seed: int = 1,
) -> list[tuple[str, float, float]]:
    """Rows ``(query, recall_without, recall_with_tmerge)`` (Figure 13)."""
    count_query = CountQuery(min_frames=count_min_frames)
    cooccur_query = CoOccurrenceQuery(
        group_size=3, min_frames=cooccur_min_frames
    )
    sums = {"Count": [0.0, 0.0], "Co-occurrence": [0.0, 0.0]}
    for i in range(n_videos):
        video = _prepare_with_tracker(
            preset, seed + i, n_frames, TracktorTracker
        )
        confirmed = _identify_and_confirm(
            video, default_quality_merger, reid_seed
        )
        merged, id_map = merge_tracks(video.tracks, sorted(confirmed))
        merged_assignment = _remap_assignment(video, id_map)

        sums["Count"][0] += count_query_recall(
            video.tracks, video.world, video.assignment, count_query
        )
        sums["Count"][1] += count_query_recall(
            merged, video.world, merged_assignment, count_query
        )
        sums["Co-occurrence"][0] += cooccurrence_query_recall(
            video.tracks, video.world, video.assignment, cooccur_query
        )
        sums["Co-occurrence"][1] += cooccurrence_query_recall(
            merged, video.world, merged_assignment, cooccur_query
        )
    return [
        (name, values[0] / n_videos, values[1] / n_videos)
        for name, values in sums.items()
    ]


def _remap_assignment(video: PreparedVideo, id_map: dict[int, int]):
    """Carry the track → GT assignment through a merge's ID remapping."""
    from repro.metrics.matching import TrackGtAssignment

    identity: dict[int, int] = {}
    fraction: dict[int, float] = {}
    for old_id, gt in video.assignment.identity.items():
        new_id = id_map.get(old_id, old_id)
        identity.setdefault(new_id, gt)
        fraction.setdefault(
            new_id, video.assignment.matched_fraction.get(old_id, 1.0)
        )
    return TrackGtAssignment(identity, fraction)
