"""Terminal dashboard for a live streaming-ingestion session.

The ``python -m repro.experiments monitor`` command drives a
:class:`~repro.streaming.StreamingIngestionService` one window emission
at a time — each step stops the service at the next window boundary
(the same simulated-SIGKILL seam the restart tests use), resumes it
from its own checkpoint, and renders a dashboard frame from the
injected telemetry registry and decision ledger.  Because every step is
a genuine checkpoint/resume cycle, what the monitor shows is exactly
the state a crashed-and-restarted service would rebuild.

Everything here is pure rendering: :func:`render_frame` maps
``(result, registry, ledger, step)`` to a string, and :func:`monitor_steps`
is a generator the CLI iterates.  No printing happens in this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.provenance import EVENT_FINAL, DecisionLedger
from repro.streaming.events import SyntheticFeedSource
from repro.streaming.service import (
    StreamingIngestionService,
    StreamRunResult,
)
from repro.telemetry import MetricsRegistry

#: Gauges shown in the header line, in display order.
_HEADER_GAUGES = (
    ("watermark", "stream.watermark"),
    ("lag ms", "stream.watermark_lag_ms"),
    ("queue", "stream.queue_depth"),
    ("open", "stream.open_windows"),
)

#: Histograms summarised per frame (p50/p95/p99), in display order.
_LATENCY_HISTOGRAMS = ("stream.merge_latency_ms", "stream.emit_lag_ms")


@dataclass
class MonitorStep:
    """One dashboard step: the emission it covers plus rendered text.

    Attributes:
        step: 1-based step count (one step per window emission).
        result: the service's :class:`StreamRunResult` for this step
            (its ``emissions`` list holds exactly the windows emitted by
            this resume cycle — normally one).
        frame: the rendered dashboard text for this step.
        done: ``True`` when the feed is exhausted (final step).
    """

    step: int
    result: StreamRunResult
    frame: str
    done: bool


def _fmt(value: float) -> str:
    """Compact numeric formatting for dashboard cells."""
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def render_frame(
    result: StreamRunResult,
    registry: MetricsRegistry | None,
    ledger: DecisionLedger | None,
    step: int,
    done: bool,
) -> str:
    """Render one dashboard frame as plain text.

    Pure function of its inputs — the CLI owns the printing, the tests
    assert on the returned string.
    """
    lines: list[str] = []
    status = "feed exhausted" if done else "running"
    lines.append(f"-- step {step} [{status}] " + "-" * 28)
    if registry is not None:
        gauges = registry.gauges_snapshot()
        header = "  ".join(
            f"{label}={_fmt(gauges[name])}"
            for label, name in _HEADER_GAUGES
            if name in gauges
        )
        if header:
            lines.append(header)
    for emission in result.emissions:
        lines.append(
            f"window {emission.index} "
            f"[{emission.window.start}:{emission.window.end}] "
            f"tracks={emission.n_tracks} pairs={emission.result.n_pairs} "
            f"candidates={len(emission.result.candidates)}"
            + (" DEGRADED" if emission.result.degraded else "")
            + f" lag={emission.lag_ms:.1f}ms"
        )
        if ledger is not None:
            for event in ledger.events_for_window(emission.index):
                if event.kind != EVENT_FINAL:
                    continue
                lines.append(
                    f"  decisions: {len(event.data['chosen'])} chosen, "
                    f"{len(event.data['ulb_accepted'])} ULB-accepted, "
                    f"{len(event.data['ulb_rejected'])} ULB-rejected "
                    f"in {event.data['iterations']} iterations"
                )
    if registry is not None:
        histograms = registry.histograms()
        for name in _LATENCY_HISTOGRAMS:
            if name not in histograms:
                continue
            histogram = histograms[name]
            lines.append(
                f"{name}: p50={histogram.percentile(0.50):.2f} "
                f"p95={histogram.percentile(0.95):.2f} "
                f"p99={histogram.percentile(0.99):.2f} "
                f"(n={histogram.count})"
            )
    interesting = {
        name: value
        for name, value in sorted(result.counters.items())
        if value
    }
    if interesting:
        lines.append(
            "counters: "
            + ", ".join(
                f"{name.removeprefix('stream.')}={value:g}"
                for name, value in interesting.items()
            )
        )
    if ledger is not None:
        lines.append(
            f"ledger: {len(ledger)} events "
            f"({ledger.n_recorded} recorded, {ledger.n_dropped} dropped)"
        )
    return "\n".join(lines)


def monitor_steps(
    make_service: Callable[[], StreamingIngestionService],
    source: SyntheticFeedSource,
    *,
    registry: MetricsRegistry | None = None,
    ledger: DecisionLedger | None = None,
    max_steps: int | None = None,
) -> Iterator[MonitorStep]:
    """Drive a service one window at a time, yielding dashboard steps.

    Each iteration builds a service via ``make_service`` (which must
    attach the shared checkpoint store — and the shared telemetry /
    ledger when observability is on), runs it with
    ``stop_after_windows=1`` so it checkpoints and halts at the next
    window boundary, and yields the rendered frame.  The generator ends
    when the feed is exhausted or after ``max_steps`` windows.

    Args:
        make_service: factory for the (re)built service; called once
            per step, mirroring a real restart each time.
        source: the event feed (offsets are tracked in the checkpoint).
        registry: the metrics registry shared by every built service.
        ledger: the decision ledger shared by every built service.
        max_steps: stop after this many windows (``None`` = run dry).
    """
    step = 0
    while True:
        service = make_service()
        result = service.run(source, stop_after_windows=1)
        step += 1
        done = not result.stopped
        yield MonitorStep(
            step=step,
            result=result,
            frame=render_frame(result, registry, ledger, step, done),
            done=done,
        )
        if done or (max_steps is not None and step >= max_steps):
            return
