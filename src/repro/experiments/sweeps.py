"""Running merging algorithms over prepared data and measuring REC / FPS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.pipeline import (
    Merger,
    merger_with_ledger,
    run_resilient_window,
)
from repro.provenance import DecisionLedger
from repro.experiments.prep import PreparedVideo
from repro.faults.profiles import FaultProfile
from repro.metrics.recall import window_recall
from repro.reid import CostParams, ReidScorer, SimReIDModel
from repro.resilience import ResilienceConfig, ResilientReidScorer
from repro.telemetry import Telemetry

MergerFactory = Callable[[], Merger]


@dataclass(frozen=True)
class MethodPoint:
    """One (configuration, dataset) measurement.

    Attributes:
        method: algorithm display name.
        rec: average REC over windows with non-empty ``P*_c``.
        fps: frames processed per simulated second.
        simulated_seconds: total simulated merging time.
        parameter: the swept parameter value (τ_max, η, …), if any.
        degraded_windows: windows that completed in degraded mode (always
            0 outside fault-injection sweeps).
        reid_invocations: total ReID forward passes (unbatched + batched
            crops) across all videos — the cost figure the CI bench gate
            guards against regressions.
    """

    method: str
    rec: float
    fps: float
    simulated_seconds: float
    parameter: float | None = None
    degraded_windows: int = 0
    reid_invocations: int = 0


def evaluate_merger(
    factory: MergerFactory,
    videos: list[PreparedVideo],
    reid_seed: int = 1,
    cost_params: CostParams | None = None,
    parameter: float | None = None,
    fault_profile: FaultProfile | None = None,
    resilience: ResilienceConfig | None = None,
    telemetry: Telemetry | None = None,
    ledger: DecisionLedger | None = None,
    workers: int | None = None,
    parallel_backend: str = "process",
) -> MethodPoint:
    """Run one algorithm configuration over every window of every video.

    A fresh merger, scorer (cache) and cost clock are used per video — the
    paper's per-video ingestion setting — and REC is averaged over all
    windows that contain at least one true polyonymous pair.

    Args:
        factory: builds a fresh merger per video.
        videos: prepared evaluation videos.
        reid_seed: seed of the ReID extraction noise.
        cost_params: simulated cost constants (defaults).
        parameter: recorded swept-parameter value for reporting.
        fault_profile: optional chaos configuration wired into the ReID
            model and the per-window crash seam (fresh injectors per
            video, so every video sees the same schedule).
        resilience: resilience tuning; defaults on when a fault profile
            is given, stays off otherwise.
        telemetry: optional injected :class:`~repro.telemetry.Telemetry`
            shared across all videos of the evaluation (counters, spans,
            hotspots).  Purely observational: results are bit-identical
            with it on or off.
        ledger: optional injected
            :class:`~repro.provenance.DecisionLedger` shared across all
            videos (window stamps restart at 0 per video).  Purely
            observational like ``telemetry`` — results are bit-identical
            with it on or off (``benchmarks/test_ledger_overhead.py``
            measures the wall-clock price and asserts the zero
            simulated-clock price).
        workers: ``None`` (default) keeps the serial per-video loop;
            an integer routes every video through the window-sharded
            engine (:func:`repro.parallel.run_windows`) with that many
            workers.  Engine results are a pure function of the seeds
            and window indices, so any worker count yields the same
            :class:`MethodPoint` bit-for-bit.
        parallel_backend: ``"process"`` or ``"thread"`` pool for the
            engine path (ignored when ``workers`` is ``None``).
    """
    if resilience is None and fault_profile is not None:
        resilience = ResilienceConfig()
    if workers is not None:
        return _evaluate_merger_sharded(
            factory,
            videos,
            reid_seed=reid_seed,
            cost_params=cost_params,
            parameter=parameter,
            fault_profile=fault_profile,
            resilience=resilience,
            telemetry=telemetry,
            ledger=ledger,
            workers=workers,
            parallel_backend=parallel_backend,
        )
    recs: list[float] = []
    total_seconds = 0.0
    total_frames = 0
    degraded_windows = 0
    reid_invocations = 0
    method = ""
    for video in videos:
        video.reset_sampling()
        merger = merger_with_ledger(factory(), ledger)
        method = merger.name
        from repro.reid import CostModel  # local import to avoid cycle noise

        cost = CostModel(cost_params, telemetry=telemetry)
        if telemetry is not None:
            telemetry.bind_clock(cost)
        model = SimReIDModel(video.world, seed=reid_seed)
        if fault_profile is not None and fault_profile.injects_reid_faults:
            model = fault_profile.wrap_model(model)
            for injector in (model.call_injector, model.corruption_injector):
                if injector is not None:
                    injector.telemetry = telemetry
        scorer: ReidScorer | ResilientReidScorer = ReidScorer(
            model, cost=cost, telemetry=telemetry
        )
        if resilience is not None:
            scorer = ResilientReidScorer(
                scorer,
                retry=resilience.retry,
                breaker_policy=resilience.breaker,
            )
        crasher = (
            fault_profile.window_crasher()
            if fault_profile is not None
            and fault_profile.window_crash_rate > 0
            else None
        )
        if crasher is not None:
            crasher.telemetry = telemetry
        for index, (pairs, gt_keys) in enumerate(
            zip(video.window_pairs, video.window_gt)
        ):
            if not pairs:
                continue
            if ledger is not None:
                ledger.begin_window(index)
            result = run_resilient_window(
                merger, index, pairs, scorer, cost, resilience, crasher
            )
            if result.degraded:
                degraded_windows += 1
            rec = window_recall(result.candidate_keys, gt_keys)
            if rec is not None:
                recs.append(rec)
        total_seconds += cost.seconds
        total_frames += video.n_frames
        reid_invocations += cost.n_extractions + cost.n_batched_extractions

    avg_rec = sum(recs) / len(recs) if recs else 1.0
    fps = total_frames / total_seconds if total_seconds > 0 else float("inf")
    return MethodPoint(
        method=method,
        rec=avg_rec,
        fps=fps,
        simulated_seconds=total_seconds,
        parameter=parameter,
        degraded_windows=degraded_windows,
        reid_invocations=reid_invocations,
    )


def _evaluate_merger_sharded(
    factory: MergerFactory,
    videos: list[PreparedVideo],
    reid_seed: int,
    cost_params: CostParams | None,
    parameter: float | None,
    fault_profile: FaultProfile | None,
    resilience: ResilienceConfig | None,
    telemetry: Telemetry | None,
    ledger: DecisionLedger | None,
    workers: int,
    parallel_backend: str,
) -> MethodPoint:
    """The ``workers`` path of :func:`evaluate_merger`.

    Each video's windows run through the window-sharded engine under
    the window-local determinism regime (see :mod:`repro.parallel`);
    the aggregation below mirrors the serial loop exactly, so for a
    fixed seed the returned :class:`MethodPoint` is identical for every
    worker count and backend.
    """
    from repro.parallel import run_windows

    recs: list[float] = []
    total_seconds = 0.0
    total_frames = 0
    degraded_windows = 0
    reid_invocations = 0
    method = ""
    for video in videos:
        video.reset_sampling()
        merger = factory()
        method = merger.name
        run = run_windows(
            world=video.world,
            window_pairs=video.window_pairs,
            merger=merger,
            cost_params=cost_params,
            reid_seed=reid_seed,
            fault_profile=fault_profile,
            resilience=resilience,
            n_workers=workers,
            backend=parallel_backend,
            telemetry=telemetry,
            ledger=ledger,
        )
        for pairs, result, gt_keys in zip(
            video.window_pairs, run.window_results, video.window_gt
        ):
            if not pairs:
                continue
            if result.degraded:
                degraded_windows += 1
            rec = window_recall(result.candidate_keys, gt_keys)
            if rec is not None:
                recs.append(rec)
        total_seconds += run.cost.seconds
        total_frames += video.n_frames
        reid_invocations += (
            run.cost.n_extractions + run.cost.n_batched_extractions
        )

    avg_rec = sum(recs) / len(recs) if recs else 1.0
    fps = total_frames / total_seconds if total_seconds > 0 else float("inf")
    return MethodPoint(
        method=method,
        rec=avg_rec,
        fps=fps,
        simulated_seconds=total_seconds,
        parameter=parameter,
        degraded_windows=degraded_windows,
        reid_invocations=reid_invocations,
    )


def rec_fps_sweep(
    factories: list[tuple[float, MergerFactory]],
    videos: list[PreparedVideo],
    reid_seed: int = 1,
) -> list[MethodPoint]:
    """Evaluate a family of configurations (one REC–FPS curve).

    Args:
        factories: ``(parameter_value, factory)`` per curve point.
        videos: prepared evaluation videos.
        reid_seed: ReID noise seed.
    """
    return [
        evaluate_merger(factory, videos, reid_seed=reid_seed, parameter=value)
        for value, factory in factories
    ]


def fps_at_rec(points: list[MethodPoint], target_rec: float) -> float | None:
    """Interpolated FPS a method achieves at a target REC (Table II).

    Points are sorted by REC; linear interpolation in (REC, FPS).  Returns
    ``None`` when the method never reaches ``target_rec``.
    """
    usable = sorted(points, key=lambda p: p.rec)
    if not usable or usable[-1].rec < target_rec:
        return None
    previous = None
    for point in usable:
        if point.rec >= target_rec:
            if previous is None or point.rec == previous.rec:
                return point.fps
            fraction = (target_rec - previous.rec) / (point.rec - previous.rec)
            return previous.fps + fraction * (point.fps - previous.fps)
        previous = point
    return None
