"""Terminal scatter/line plots for REC-FPS curves (no plotting deps).

The library runs in offline environments without matplotlib, so the
experiment harness renders its curves as ASCII: one glyph per method,
log-scaled x where appropriate.  Used by the CLI and handy in notebooks'
text mode.
"""

from __future__ import annotations

import math

from repro.experiments.sweeps import MethodPoint

_GLYPHS = "oxv*#@+%"


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    title: str | None = None,
) -> str:
    """Render named (x, y) series on a character grid.

    Args:
        series: mapping from series name to its points.
        width: plot area width in characters.
        height: plot area height in characters.
        x_label: x-axis caption.
        y_label: y-axis caption.
        log_x: log-scale the x axis (for FPS spans of several decades).
        title: optional heading line.

    Returns:
        The rendered multi-line string (includes a legend).
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        raise ValueError("nothing to plot")
    if log_x and any(x <= 0 for x, _ in points):
        raise ValueError("log_x requires positive x values")

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    xs = [tx(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_lo_text = f"{10**x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_hi_text = f"{10**x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    axis = f"{x_lo_text}  {x_label}  {x_hi_text}"
    if log_x:
        axis += "  (log)"
    lines.append(" " * (margin + 1) + axis)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def rec_fps_plot(
    curves: dict[str, list[MethodPoint]],
    title: str | None = None,
) -> str:
    """Render method REC-FPS curves (FPS on a log x-axis, REC on y)."""
    series = {
        name: [(p.fps, p.rec) for p in points if p.fps > 0]
        for name, points in curves.items()
    }
    series = {name: pts for name, pts in series.items() if pts}
    return ascii_plot(
        series,
        x_label="FPS",
        y_label="REC",
        log_x=True,
        title=title,
    )
