"""Experiment harness shared by the benchmark suite.

* :mod:`repro.experiments.prep` — build *prepared videos* (world →
  detections → tracks → windows → pair sets → GT polyonymous labels) once
  and share them across algorithm sweeps.
* :mod:`repro.experiments.sweeps` — run a merging algorithm over prepared
  data and measure (REC, simulated seconds, FPS).
* :mod:`repro.experiments.figures` — one function per paper table/figure,
  returning structured rows; the benchmark files print them.
* :mod:`repro.experiments.reporting` — plain-text table formatting.
"""

from repro.experiments.prep import PreparedVideo, prepare_video, prepare_dataset
from repro.experiments.sweeps import MethodPoint, evaluate_merger, rec_fps_sweep
from repro.experiments.reporting import format_table

__all__ = [
    "PreparedVideo",
    "prepare_video",
    "prepare_dataset",
    "MethodPoint",
    "evaluate_merger",
    "rec_fps_sweep",
    "format_table",
]
