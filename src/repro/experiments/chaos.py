"""Chaos sweeps: merger quality and throughput under injected faults.

Runs one merger configuration across a matrix of fault profiles (plus a
fault-free baseline) and reports REC, FPS and the number of windows that
completed in degraded mode.  Every profile is re-seeded through
:meth:`~repro.faults.profiles.FaultProfile.with_seed` so a sweep is a pure
function of ``(factory, videos, reid_seed, fault_seed)``.
"""

from __future__ import annotations

from repro.experiments.prep import PreparedVideo
from repro.experiments.sweeps import MergerFactory, MethodPoint, evaluate_merger
from repro.faults import fault_profile
from repro.reid import CostParams
from repro.resilience import ResilienceConfig


def fault_profile_sweep(
    factory: MergerFactory,
    videos: list[PreparedVideo],
    profiles: list[str],
    reid_seed: int = 1,
    fault_seed: int = 7,
    cost_params: CostParams | None = None,
    resilience: ResilienceConfig | None = None,
) -> list[tuple[str, MethodPoint]]:
    """Evaluate one merger under each named fault profile.

    The first row is always the fault-free baseline (profile name
    ``"none"``) measured with the resilience layer *enabled*, so any gap
    between it and a faulted row is attributable to the faults alone —
    the fault-free resilient path is bit-identical to the plain one.

    Args:
        factory: builds a fresh merger per video (per profile).
        videos: prepared evaluation videos.
        profiles: names from :data:`repro.faults.profiles.PROFILES`.
        reid_seed: seed of the ReID extraction noise.
        fault_seed: seed of every profile's fault schedule.
        cost_params: simulated cost constants (defaults).
        resilience: resilience tuning shared by all rows (defaults).
    """
    config = resilience if resilience is not None else ResilienceConfig()
    rows: list[tuple[str, MethodPoint]] = [
        (
            "none",
            evaluate_merger(
                factory,
                videos,
                reid_seed=reid_seed,
                cost_params=cost_params,
                resilience=config,
            ),
        )
    ]
    for name in profiles:
        profile = fault_profile(name, seed=fault_seed)
        rows.append(
            (
                name,
                evaluate_merger(
                    factory,
                    videos,
                    reid_seed=reid_seed,
                    cost_params=cost_params,
                    fault_profile=profile,
                    resilience=config,
                ),
            )
        )
    return rows
