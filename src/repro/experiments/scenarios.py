"""Regime-sweep harness: the scenario matrix through both engines.

``python -m repro.experiments scenarios`` runs every named scenario
(:data:`repro.scenarios.SCENARIO_MATRIX`) through the batch ingestion
pipeline and the streaming service, recording per-scenario recall, ReID
budget and simulated latency into a ``scenario_matrix.json`` document.
CI's ``scenario-sweep`` job regenerates the document at smoke scale and
gates it **per scenario** against the committed baseline
(``benchmarks/results/scenario_matrix.json``) — a regression confined to
one regime must fail the build even when the matrix average looks fine.

Both legs run under the window-local determinism regime (``workers=1``
through the sharded engine, thread backend), so the recorded numbers are
a pure function of ``(matrix, seed)`` — bit-identical across machines,
worker counts and reruns, which is what makes committing the baseline
meaningful.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.core.pipeline import IngestionPipeline
from repro.core.tmerge import TMerge
from repro.experiments.bench_summary import BenchSummary
from repro.metrics.matching import match_tracks_to_gt, polyonymous_pairs
from repro.metrics.recall import window_recall
from repro.scenarios import (
    SCENARIO_MATRIX,
    Scenario,
    ScenarioSpec,
    build_scenario,
    scenario_by_name,
    smoke_variant,
)
from repro.streaming import StreamingIngestionService, SyntheticFeedSource
from repro.track.tracktor import TracktorTracker

#: Format version stamped into every matrix document.
SCHEMA_VERSION = 1

#: Committed per-scenario baseline the CI gate compares against.
DEFAULT_MATRIX_PATH = "benchmarks/results/scenario_matrix.json"

#: Default relative tolerance of the per-scenario gate.
DEFAULT_TOLERANCE = 0.05

#: Arrival jitter bound (simulated ms) of the streaming leg's feed.
_DISORDER_MS = 50.0

#: Allowed lateness (frames) of the streaming leg.
_LATENESS = 4

#: Per-window TMerge sampling budget.  Deliberately *budgeted* (not
#: saturating): at this τ_max the matrix's recalls spread over roughly
#: [0.6, 1.0], so a per-scenario recall regression actually has room to
#: show up — a saturating budget would pin every scenario at 1.0 and
#: blind the gate.
_TAU_MAX = 80


def _merger() -> TMerge:
    """The fixed merger configuration every scenario runs."""
    return TMerge(k=0.1, tau_max=_TAU_MAX, batch_size=10, seed=3)


def _batch_leg(scenario: Scenario) -> dict:
    """Run the batch pipeline over a scenario; return its metrics."""
    spec = scenario.spec
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=_merger(),
        window_length=spec.window_length,
        reid_seed=scenario.seeds.reid_seed,
        detector_seed=scenario.seeds.detector_seed,
        fault_profile=scenario.profile,
        workers=1,
        parallel_backend="thread",
    )
    result = pipeline.run(scenario.world)
    assignment = match_tracks_to_gt(result.tracks, scenario.world)
    recs: list[float] = []
    for pairs, window_result in zip(
        result.window_pairs, result.window_results
    ):
        if not pairs:
            continue
        gt_keys = polyonymous_pairs(pairs, assignment)
        rec = window_recall(window_result.candidate_keys, gt_keys)
        if rec is not None:
            recs.append(rec)
    recall = sum(recs) / len(recs) if recs else 1.0
    return {
        "recall": round(recall, 6),
        "reid_budget": int(
            result.cost.n_extractions + result.cost.n_batched_extractions
        ),
        "simulated_ms": round(result.cost.seconds * 1000.0, 3),
        "degraded_windows": len(result.degraded_windows),
        "windows": len(result.windows),
        "tracks": len(result.tracks),
    }


def _stream_leg(scenario: Scenario) -> dict:
    """Run the streaming service over a scenario; return its metrics."""
    spec = scenario.spec
    source = SyntheticFeedSource(
        scenario.world,
        detector_seed=scenario.seeds.detector_seed,
        disorder_ms=_DISORDER_MS,
        disorder_seed=scenario.seeds.disorder_seed,
        fault_profile=scenario.profile,
    )
    service = StreamingIngestionService(
        TracktorTracker(),
        _merger(),
        window_length=spec.window_length,
        allowed_lateness=_LATENESS,
        reid_seed=scenario.seeds.reid_seed,
        workers=1,
        parallel_backend="thread",
        fault_profile=scenario.profile,
    )
    run = service.run(source)
    lags = [emission.lag_ms for emission in run.emissions]
    return {
        "emissions": len(run.emissions),
        "mean_lag_ms": round(sum(lags) / len(lags), 3) if lags else 0.0,
        "max_lag_ms": round(max(lags), 3) if lags else 0.0,
        "degraded_windows": sum(
            1 for emission in run.emissions if emission.result.degraded
        ),
    }


def run_scenario(spec: ScenarioSpec, seed: int = 0) -> dict:
    """Run one scenario through both legs; return its matrix record."""
    scenario = build_scenario(spec, seed)
    record = {
        "scenario_id": spec.scenario_id,
        "preset": spec.preset,
        "axes": list(spec.active_axes),
    }
    record.update(_batch_leg(scenario))
    record["stream"] = _stream_leg(scenario)
    return record


def sweep(
    seed: int = 0,
    smoke: bool = False,
    only: Sequence[str] | None = None,
    progress=None,
) -> dict:
    """Run the (optionally filtered) matrix; return the matrix document.

    Args:
        seed: sweep seed, combined with each scenario's identity hash
            into that scenario's private seed streams.
        smoke: run the CI quick-lane variants
            (:func:`repro.scenarios.smoke_variant`) instead of the full
            specs.
        only: optional scenario-name subset (unknown names raise
            ``KeyError``).
        progress: optional ``callable(str)`` invoked with each scenario
            name as it completes (the CLI prints these).
    """
    if only:
        specs = [scenario_by_name(name) for name in only]
    else:
        specs = list(SCENARIO_MATRIX)
    if smoke:
        specs = [smoke_variant(spec) for spec in specs]
    scenarios: dict[str, dict] = {}
    for spec in specs:
        scenarios[spec.name] = run_scenario(spec, seed=seed)
        if progress is not None:
            progress(spec.name)
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "scenarios": scenarios,
    }


def write_matrix(document: dict, path: str | Path) -> Path:
    """Write a matrix document as stable pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return path


def load_matrix(path: str | Path) -> dict:
    """Load a matrix document; validate its schema version."""
    document = json.loads(Path(path).read_text())
    schema = int(document.get("schema", 0))
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported scenario matrix schema {schema} "
            f"(expected {SCHEMA_VERSION})"
        )
    return document


def gate_matrix(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Gate a matrix document per scenario; return failure descriptions.

    A scenario fails when it is missing from the current run, its recall
    dropped or its ReID budget grew by more than ``tolerance``
    (relative).  A ``scenario_id`` mismatch fails as *definition drift*:
    the spec changed, so comparing metrics would be meaningless — the
    baseline must be consciously refreshed.  Mode/seed mismatches fail
    the whole comparison for the same reason.  Scenarios present only in
    the current run pass (no baseline yet).  An empty return value means
    the gate passes.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    failures: list[str] = []
    for key in ("mode", "seed"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key} mismatch: current {current.get(key)!r} vs "
                f"baseline {baseline.get(key)!r} — runs are not comparable"
            )
    if failures:
        return failures
    current_scenarios = current.get("scenarios", {})
    for name, base in sorted(baseline.get("scenarios", {}).items()):
        now = current_scenarios.get(name)
        if now is None:
            failures.append(
                f"{name}: present in baseline but missing from this run"
            )
            continue
        if now["scenario_id"] != base["scenario_id"]:
            failures.append(
                f"{name}: scenario_id {base['scenario_id']} -> "
                f"{now['scenario_id']} — definition drift; refresh the "
                "baseline to re-pin this scenario"
            )
            continue
        recall_floor = base["recall"] * (1.0 - tolerance)
        if now["recall"] < recall_floor:
            failures.append(
                f"{name}: recall regressed {base['recall']:.4f} -> "
                f"{now['recall']:.4f} (floor {recall_floor:.4f} at "
                f"{tolerance:.0%} tolerance)"
            )
        budget_ceiling = base["reid_budget"] * (1.0 + tolerance)
        if now["reid_budget"] > budget_ceiling:
            failures.append(
                f"{name}: reid_budget regressed {base['reid_budget']} -> "
                f"{now['reid_budget']} (ceiling {budget_ceiling:.0f} at "
                f"{tolerance:.0%} tolerance)"
            )
    return failures


def gate_matrix_files(
    current_path: str | Path,
    baseline_path: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """File-level wrapper around :func:`gate_matrix` for the CLI."""
    return gate_matrix(
        load_matrix(current_path),
        load_matrix(baseline_path),
        tolerance=tolerance,
    )


def merge_into_summary(
    document: dict, summary_path: str | Path
) -> Path:
    """Fold a matrix document into a ``bench_summary.json``.

    Records one ``scenario_matrix`` benchmark whose gated metrics are
    the matrix's *worst case* — minimum per-scenario recall and total
    ReID budget — with every per-scenario number preserved in the
    (ungated) extras, so the bench artifact carries the full sweep
    without widening the bench gate's noise surface.
    """
    summary_path = Path(summary_path)
    if summary_path.exists():
        summary = BenchSummary.load(summary_path)
    else:
        summary = BenchSummary()
    scenarios = document["scenarios"]
    extras: dict[str, float] = {}
    for name, record in scenarios.items():
        extras[f"{name}.recall"] = record["recall"]
        extras[f"{name}.reid_budget"] = record["reid_budget"]
        extras[f"{name}.mean_lag_ms"] = record["stream"]["mean_lag_ms"]
    summary.add(
        "scenario_matrix",
        recall=min(r["recall"] for r in scenarios.values()),
        reid_invocations=sum(r["reid_budget"] for r in scenarios.values()),
        simulated_ms=sum(r["simulated_ms"] for r in scenarios.values()),
        extras=extras,
    )
    return summary.write(summary_path)


def format_matrix(document: dict) -> str:
    """Render a matrix document as the CLI's report table."""
    from repro.experiments.reporting import format_table

    rows = [
        [
            name,
            record["scenario_id"],
            "+".join(record["axes"]) or "clear",
            record["recall"],
            record["reid_budget"],
            record["degraded_windows"],
            record["stream"]["mean_lag_ms"],
        ]
        for name, record in sorted(document["scenarios"].items())
    ]
    return format_table(
        ["scenario", "id", "axes", "REC", "reid budget", "degraded",
         "mean lag ms"],
        rows,
        f"Scenario matrix — mode {document['mode']}, "
        f"seed {document['seed']}, {len(rows)} scenarios",
    )
