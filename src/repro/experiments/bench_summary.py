"""Machine-readable benchmark summaries and the CI regression gate.

The benchmark suite (``benchmarks/``) writes a ``bench_summary.json``
recording, per figure benchmark, the three numbers the project treats as
its performance contract: recall (REC), ReID invocations and simulated
milliseconds.  CI uploads the file as an artifact and
:func:`compare_summaries` gates merges against the committed baseline
(``benchmarks/results/baseline_summary.json``): recall may not drop, and
ReID invocations may not grow, by more than the tolerance (5% by
default).  Simulated milliseconds are recorded for inspection but not
gated — they track invocations closely and double-gating one regression
would double the noise surface.

The baseline-refresh procedure is documented in DESIGN.md §8 and the
README's Observability walkthrough: re-run the smoke benchmarks, inspect
the diff, and commit the regenerated file alongside the change that
legitimately moved the numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Format version stamped into every summary file.
SCHEMA_VERSION = 1

#: Default relative tolerance of the regression gate.
DEFAULT_TOLERANCE = 0.05

#: The per-benchmark metrics a summary records.
METRIC_KEYS = ("recall", "reid_invocations", "simulated_ms")


class BenchSummary:
    """An ordered collection of per-benchmark metric records."""

    def __init__(self) -> None:
        self.benchmarks: dict[str, dict[str, object]] = {}

    def add(
        self,
        name: str,
        recall: float,
        reid_invocations: float,
        simulated_ms: float,
        extras: dict[str, float] | None = None,
    ) -> None:
        """Record one benchmark's metrics (re-adding a name overwrites).

        ``extras`` carries ungated, machine-specific observations (e.g.
        the parallel engine's wall-clock speedup); the gate compares
        only :data:`METRIC_KEYS` and ignores them entirely.
        """
        record = {
            "recall": float(recall),
            "reid_invocations": float(reid_invocations),
            "simulated_ms": float(simulated_ms),
        }
        if extras:
            record["extras"] = {
                key: float(value) for key, value in sorted(extras.items())
            }
        self.benchmarks[name] = record

    def to_dict(self) -> dict:
        """The JSON document this summary serializes to."""
        return {
            "schema": SCHEMA_VERSION,
            "benchmarks": {
                name: dict(metrics)
                for name, metrics in sorted(self.benchmarks.items())
            },
        }

    def write(self, path: str | Path) -> Path:
        """Write the summary as pretty-printed JSON; return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_dict(cls, document: dict) -> "BenchSummary":
        """Rebuild a summary from a parsed JSON document."""
        schema = int(document.get("schema", 0))
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench summary schema {schema} "
                f"(expected {SCHEMA_VERSION})"
            )
        summary = cls()
        for name, metrics in document.get("benchmarks", {}).items():
            missing = [key for key in METRIC_KEYS if key not in metrics]
            if missing:
                raise ValueError(
                    f"benchmark {name!r} is missing metrics: {missing}"
                )
            summary.add(
                name,
                recall=metrics["recall"],
                reid_invocations=metrics["reid_invocations"],
                simulated_ms=metrics["simulated_ms"],
                extras=metrics.get("extras"),
            )
        return summary

    @classmethod
    def load(cls, path: str | Path) -> "BenchSummary":
        """Load a summary previously written by :meth:`write`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def compare_summaries(
    current: BenchSummary,
    baseline: BenchSummary,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Gate ``current`` against ``baseline``; return failure descriptions.

    A benchmark fails the gate when:

    * it exists in the baseline but is missing from the current run;
    * its recall dropped by more than ``tolerance`` (relative); or
    * its ReID-invocation count grew by more than ``tolerance``
      (relative).

    Benchmarks present only in the current run pass (they have no
    baseline yet — refresh the baseline to start gating them).  An empty
    return value means the gate passes.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    failures: list[str] = []
    for name, base in sorted(baseline.benchmarks.items()):
        now = current.benchmarks.get(name)
        if now is None:
            failures.append(
                f"{name}: present in baseline but missing from this run"
            )
            continue
        recall_floor = base["recall"] * (1.0 - tolerance)
        if now["recall"] < recall_floor:
            failures.append(
                f"{name}: recall regressed {base['recall']:.4f} -> "
                f"{now['recall']:.4f} (floor {recall_floor:.4f} at "
                f"{tolerance:.0%} tolerance)"
            )
        invocation_ceiling = base["reid_invocations"] * (1.0 + tolerance)
        if now["reid_invocations"] > invocation_ceiling:
            failures.append(
                f"{name}: reid_invocations regressed "
                f"{base['reid_invocations']:.0f} -> "
                f"{now['reid_invocations']:.0f} (ceiling "
                f"{invocation_ceiling:.0f} at {tolerance:.0%} tolerance)"
            )
    return failures


def gate_summary_files(
    current_path: str | Path,
    baseline_path: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """File-level wrapper around :func:`compare_summaries` for the CLI."""
    current = BenchSummary.load(current_path)
    baseline = BenchSummary.load(baseline_path)
    return compare_summaries(current, baseline, tolerance=tolerance)
