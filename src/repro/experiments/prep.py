"""Prepared evaluation data: everything upstream of the merging algorithms.

Simulating, detecting, tracking and ground-truth matching are shared across
every algorithm configuration in a sweep, so they are computed once per
(preset, seed) and reused.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pairs import PairKey, TrackPair, build_track_pairs
from repro.core.windows import Window, WindowedTracks, partition_windows
from repro.detect import Detection, NoisyDetector
from repro.metrics.matching import (
    TrackGtAssignment,
    match_tracks_to_gt,
    polyonymous_pairs,
)
from repro.synth.datasets import DatasetPreset, preset_by_name
from repro.synth.world import VideoGroundTruth, simulate_world
from repro.track.base import Track, Tracker
from repro.track.tracktor import TracktorTracker


@dataclass
class PreparedVideo:
    """One video with tracking output and GT polyonymous labels.

    Attributes:
        world: simulated ground truth.
        detections: per-frame detector output.
        tracks: tracker output.
        windows: the temporal windows.
        window_pairs: ``P_c`` per window.
        window_gt: ``P*_c`` (GT polyonymous pair keys) per window.
        assignment: track → GT identity assignment.
    """

    world: VideoGroundTruth
    detections: list[list[Detection]]
    tracks: list[Track]
    windows: list[Window]
    window_pairs: list[list[TrackPair]]
    window_gt: list[set[PairKey]]
    assignment: TrackGtAssignment

    @property
    def n_frames(self) -> int:
        """Total frames in the prepared video."""
        return self.world.n_frames

    def reset_sampling(self) -> None:
        """Forget all BBox-pair sampling state (call between algorithm runs)."""
        for pairs in self.window_pairs:
            for pair in pairs:
                pair.reset_sampling()

    def all_gt_keys(self) -> set[PairKey]:
        """Union of GT polyonymous pair keys across all windows."""
        keys: set[PairKey] = set()
        for gt in self.window_gt:
            keys |= gt
        return keys


def prepare_video(
    preset: DatasetPreset | str,
    seed: int = 0,
    n_frames: int | None = None,
    window_length: int | None = None,
    tracker: Tracker | None = None,
) -> PreparedVideo:
    """Simulate, detect, track and label one video.

    Args:
        preset: dataset preset or its name.
        seed: world seed; detector uses ``seed + 1000``.
        n_frames: override the preset's video length.
        window_length: override the preset's window length ``L``.
        tracker: tracker to use (default: Tracktor, the paper's primary).
    """
    if isinstance(preset, str):
        preset = preset_by_name(preset)
    frames = n_frames if n_frames is not None else preset.video_frames
    length = (
        window_length if window_length is not None else preset.default_window
    )
    tracker = tracker or TracktorTracker()

    world = simulate_world(preset.config, frames, seed=seed)
    detections = NoisyDetector().detect_video(world, seed=seed + 1000)
    tracks = tracker.run(detections)
    assignment = match_tracks_to_gt(tracks, world)

    windows = partition_windows(frames, length)
    windowed = WindowedTracks.assign(tracks, windows)
    window_pairs = []
    window_gt = []
    for c in range(len(windows)):
        pairs = build_track_pairs(
            windowed.tracks_of(c), windowed.previous_tracks_of(c)
        )
        window_pairs.append(pairs)
        window_gt.append(polyonymous_pairs(pairs, assignment))
    return PreparedVideo(
        world=world,
        detections=detections,
        tracks=tracks,
        windows=windows,
        window_pairs=window_pairs,
        window_gt=window_gt,
        assignment=assignment,
    )


def rewindow(video: PreparedVideo, window_length: int) -> PreparedVideo:
    """Re-partition an already-prepared video with a different ``L``.

    Simulation, detection, tracking and GT matching are reused; only the
    windows, pair sets and per-window GT labels are rebuilt.  Used by the
    window-length sensitivity experiment (Figure 9).
    """
    windows = partition_windows(video.n_frames, window_length)
    windowed = WindowedTracks.assign(video.tracks, windows)
    window_pairs = []
    window_gt = []
    for c in range(len(windows)):
        pairs = build_track_pairs(
            windowed.tracks_of(c), windowed.previous_tracks_of(c)
        )
        window_pairs.append(pairs)
        window_gt.append(polyonymous_pairs(pairs, video.assignment))
    return PreparedVideo(
        world=video.world,
        detections=video.detections,
        tracks=video.tracks,
        windows=windows,
        window_pairs=window_pairs,
        window_gt=window_gt,
        assignment=video.assignment,
    )


def prepare_dataset(
    preset: DatasetPreset | str,
    n_videos: int,
    seed: int = 0,
    n_frames: int | None = None,
    window_length: int | None = None,
    tracker: Tracker | None = None,
) -> list[PreparedVideo]:
    """Prepare ``n_videos`` videos with consecutive seeds."""
    return [
        prepare_video(
            preset,
            seed=seed + i,
            n_frames=n_frames,
            window_length=window_length,
            tracker=tracker,
        )
        for i in range(n_videos)
    ]
