"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    Floats are shown with three decimals; ``None`` renders as ``-``.
    """
    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)
