"""Zero-dependency OpenMetrics / Prometheus text exposition.

:func:`render_openmetrics` turns a :class:`MetricsRegistry` into the
OpenMetrics text format a Prometheus scraper (or ``promtool``) accepts:
dotted repo metric names are sanitized to underscore form under a
configurable prefix, counters gain the conventional ``_total`` suffix,
histograms are expanded into *cumulative* ``_bucket{le="..."}`` series
(the repo's internal bucket counts are per-bucket, not cumulative) plus
``_sum`` / ``_count``, and the exposition ends with the mandatory
``# EOF`` marker.

:func:`parse_openmetrics` is the matching reader — enough of the format
to round-trip everything the renderer emits, which is what the exporter
tests (and the ``monitor`` CLI's self-check) rely on.  Values are
rendered with ``repr(float)`` so the round-trip is bit-exact.
"""

from __future__ import annotations

import re

from repro.telemetry.metrics import MetricsRegistry

#: Characters legal in a Prometheus metric name after the first.
_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted repo metric name to Prometheus form.

    ``reid.invocations`` → ``repro_reid_invocations``.
    """
    sanitized = _NAME_SANITIZER.sub("_", name)
    if prefix:
        return f"{prefix}_{sanitized}"
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: float) -> str:
    """A float rendered so the exposition round-trips bit-exactly."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _format_le(bound: float) -> str:
    """A bucket upper bound for the ``le`` label (+Inf for the last)."""
    if bound == float("inf"):
        return "+Inf"
    return repr(float(bound))


def render_openmetrics(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """The registry as OpenMetrics exposition text (ends with ``# EOF``).

    Counters render as ``<name>_total`` counter families, gauges as
    plain gauges, histograms as cumulative ``_bucket`` series plus
    ``_sum`` / ``_count``.
    """
    lines: list[str] = []
    for name, value in registry.counters_snapshot().items():
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_format_value(value)}")
    for name, value in registry.gauges_snapshot().items():
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(value)}")
    for name, histogram in registry.histograms().items():
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for index, bound in enumerate(
            (*histogram.bounds, float("inf"))
        ):
            cumulative += histogram.bucket_counts[index]
            lines.append(
                f'{family}_bucket{{le="{_format_le(bound)}"}} '
                f"{_format_value(float(cumulative))}"
            )
        lines.append(f"{family}_sum {_format_value(histogram.total)}")
        lines.append(
            f"{family}_count {_format_value(float(histogram.count))}"
        )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_openmetrics(text: str) -> dict[str, float]:
    """Parse exposition text back into ``sample-name -> value``.

    Sample names keep their label sets verbatim
    (``repro_window_merge_ms_bucket{le="10.0"}``), so the result of
    ``parse_openmetrics(render_openmetrics(registry))`` pins every
    emitted number.  ``# TYPE`` and comment lines are skipped; the
    exposition must end with ``# EOF``.

    Raises:
        ValueError: malformed sample line, or the ``# EOF`` terminator
            is missing.
    """
    samples: dict[str, float] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            continue
        if saw_eof:
            raise ValueError("sample line after # EOF")
        if "}" in line:
            cut = line.index("}") + 1
            name, _, value = (
                line[:cut],
                " ",
                line[cut:].strip(),
            )
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed sample line: {raw!r}")
            name, value = parts
        if not value:
            raise ValueError(f"malformed sample line: {raw!r}")
        samples[name] = _parse_value(value.split()[0])
    if not saw_eof:
        raise ValueError("exposition is missing the # EOF terminator")
    return samples
