"""repro.telemetry — zero-dependency observability for the TMerge stack.

Three primitives behind one injectable facade:

* :class:`MetricsRegistry` — lazily-created counters, gauges and
  histograms (ReID invocations, cache hit/miss/eviction, Thompson
  draws, ULB prunes, breaker flips, degraded windows, …).
* :class:`Tracer` — nested spans timed on the *simulated*
  :class:`~repro.reid.cost.CostModel` clock, exported as JSONL.
* :class:`Profiler` + :func:`profiled` — wall-clock hotspot accounting
  for the Python implementation itself (kept strictly outside the
  simulated-cost story).

Plus the operational export surface: :func:`render_openmetrics` /
:func:`parse_openmetrics` expose a registry in the OpenMetrics /
Prometheus text format (zero-dependency; see
:mod:`repro.telemetry.openmetrics`).

The facade, :class:`Telemetry`, is always *injected* — constructed by
whoever owns a run and passed down through constructors.  Module-level
telemetry singletons are a lint violation (REPRO010).  Components accept
``telemetry=None`` and skip all recording in that case, which keeps the
un-instrumented path free and guarantees bit-identical results with
telemetry on or off (DESIGN.md §8).
"""

from repro.telemetry.facade import Telemetry
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)
from repro.telemetry.profiling import FunctionStats, Profiler, profiled
from repro.telemetry.tracing import (
    Span,
    Tracer,
    load_spans_jsonl,
    spans_from_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FunctionStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "Span",
    "Telemetry",
    "Tracer",
    "load_spans_jsonl",
    "metric_name",
    "parse_openmetrics",
    "profiled",
    "render_openmetrics",
    "spans_from_jsonl",
]
