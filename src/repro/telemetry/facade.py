"""The injectable :class:`Telemetry` facade.

One ``Telemetry`` object bundles the three observability primitives —
a :class:`~repro.telemetry.metrics.MetricsRegistry`, a
:class:`~repro.telemetry.tracing.Tracer` and a
:class:`~repro.telemetry.profiling.Profiler` — behind the handful of
shortcuts call sites actually use (``count``, ``observe``, ``span``).

Ownership model (lint-enforced by REPRO010): a ``Telemetry`` is
constructed by whoever owns a *run* — the ingestion pipeline, a sweep,
the CLI, a test — and injected down through constructors.  Components
treat ``telemetry=None`` as "observability off" and guard every record
call, so the fault-free, telemetry-free path stays exactly as cheap and
exactly as deterministic as before.
"""

from __future__ import annotations

from contextlib import AbstractContextManager

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import Profiler
from repro.telemetry.tracing import Span, Tracer


class Telemetry:
    """Metrics + tracing + profiling for one run.

    Args:
        clock: optional simulated clock (a
            :class:`~repro.reid.cost.CostModel`) for span timestamps;
            usually bound later via :meth:`bind_clock` because the cost
            model is created inside the run being observed.
    """

    def __init__(self, clock: object | None = None) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock)
        self.profiler = Profiler()

    @property
    def clock(self) -> object | None:
        """The simulated clock spans are stamped with (may be ``None``)."""
        return self.tracer.clock

    def bind_clock(self, clock: object) -> None:
        """Point span timestamps at ``clock`` (idempotent, cheap)."""
        self.tracer.bind_clock(clock)

    # ------------------------------------------------------------------
    # Recording shortcuts
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` in histogram ``name``."""
        self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.metrics.set_gauge(name, value)

    def span(self, name: str, **attributes: object) -> AbstractContextManager[Span]:
        """Open a traced span (see :meth:`Tracer.span`)."""
        return self.tracer.span(name, **attributes)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, top: int = 10) -> str:
        """Combined metrics + hotspot report as plain text."""
        parts = [self.metrics.report()]
        hotspots = self.profiler.report(top)
        if hotspots:
            parts.append(hotspots)
        return "\n\n".join(part for part in parts if part)
