"""Span-based tracing on the simulated clock.

A :class:`Tracer` produces nested :class:`Span` records whose timestamps
come from the *simulated* :class:`~repro.reid.cost.CostModel` clock, not
wall time — so traces are bit-reproducible and a span's duration is
exactly the simulated milliseconds the traced region charged.  Spans
carry deterministic sequential ids (no UUIDs, no wall-clock epochs),
nest through an explicit stack, and export to JSONL one object per
finished span.

Usage::

    tracer = Tracer(clock=cost)
    with tracer.span("window", window_id=3):
        with tracer.span("merge", method="TMerge"):
            ...
    tracer.export_jsonl("trace.jsonl")
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One traced region of a run.

    Attributes:
        span_id: deterministic sequential id (1-based, in start order).
        parent_id: enclosing span's id, or ``None`` for roots.
        name: region name (``"window"``, ``"merge"``).
        start_ms: simulated milliseconds at entry.
        end_ms: simulated milliseconds at exit (``None`` while open).
        attributes: caller-supplied key/value context.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_ms: float
    end_ms: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Simulated milliseconds between entry and exit (0.0 while open)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def to_dict(self) -> dict[str, object]:
        """JSON-able form (the JSONL line payload)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        parent = payload["parent_id"]
        end = payload["end_ms"]
        return cls(
            span_id=int(payload["span_id"]),  # type: ignore[arg-type]
            parent_id=None if parent is None else int(parent),  # type: ignore[arg-type]
            name=str(payload["name"]),
            start_ms=float(payload["start_ms"]),  # type: ignore[arg-type]
            end_ms=None if end is None else float(end),  # type: ignore[arg-type]
            attributes=dict(payload.get("attributes") or {}),  # type: ignore[arg-type]
        )


class Tracer:
    """Builds nested spans timed on an injected simulated clock.

    Args:
        clock: any object with a ``milliseconds`` attribute (usually a
            :class:`~repro.reid.cost.CostModel`).  ``None`` stamps all
            spans at 0.0 until :meth:`bind_clock` is called — tracing
            structure still works, durations read as zero.
    """

    def __init__(self, clock: object | None = None) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def bind_clock(self, clock: object) -> None:
        """Attach (or replace) the clock spans read their timestamps from."""
        self.clock = clock

    def _now(self) -> float:
        if self.clock is None:
            return 0.0
        return float(self.clock.milliseconds)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body.

        The span is appended to :attr:`spans` on exit (children finish
        before parents, so the list is in completion order; sort by
        ``span_id`` for start order).
        """
        parent = self.current
        record = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            start_ms=self._now(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end_ms = self._now()
            self.spans.append(record)

    def absorb(
        self, spans: list[Span], parent_id: int | None = None
    ) -> list[Span]:
        """Adopt finished spans from another tracer (a worker's).

        Every absorbed span receives a fresh sequential id from this
        tracer; internal parent/child links are remapped, and root spans
        are re-parented under ``parent_id`` (default: the currently open
        span, or ``None``).  Timestamps are kept verbatim — they remain
        on the *worker's* clock (window-local simulated milliseconds for
        parallel runs).  Absorbed spans are appended in id (start)
        order.
        """
        if parent_id is None and self.current is not None:
            parent_id = self.current.span_id
        id_map: dict[int, int] = {}
        adopted: list[Span] = []
        for span in sorted(spans, key=lambda s: s.span_id):
            new_id = self._next_id
            self._next_id += 1
            id_map[span.span_id] = new_id
            new_parent = (
                id_map.get(span.parent_id, parent_id)
                if span.parent_id is not None
                else parent_id
            )
            record = Span(
                span_id=new_id,
                parent_id=new_parent,
                name=span.name,
                start_ms=span.start_ms,
                end_ms=span.end_ms,
                attributes=dict(span.attributes),
            )
            self.spans.append(record)
            adopted.append(record)
        return adopted

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """All finished spans as JSONL, one object per line, in id order."""
        ordered = sorted(self.spans, key=lambda s: s.span_id)
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True) for span in ordered
        )

    def export_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns spans written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self.spans)


def spans_from_jsonl(text: str) -> list[Span]:
    """Parse JSONL produced by :meth:`Tracer.to_jsonl` back into spans."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def load_spans_jsonl(path: str) -> list[Span]:
    """Read a JSONL trace file written by :meth:`Tracer.export_jsonl`."""
    with open(path, encoding="utf-8") as fh:
        return spans_from_jsonl(fh.read())
