"""Counters, gauges and histograms — the repo's metric primitives.

A :class:`MetricsRegistry` is a named collection of metric instruments.
Instruments are created lazily on first touch (``registry.inc("x")``)
so call sites never need registration boilerplate, and every instrument
is a plain in-process object: no exporters, no background threads, no
third-party dependencies.  Registries are *injected* — module-level
registry singletons are a lint violation (REPRO010) because they leak
counts across runs and break test isolation.

All instruments are observability-only: they never touch RNG state or
the simulated :class:`~repro.reid.cost.CostModel` clock, which is what
makes a telemetry-enabled pipeline run bit-identical to a plain one
(see ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import math
from collections import OrderedDict

#: Default histogram bucket upper bounds (a final +inf bucket is implied).
#: Tuned for simulated milliseconds: spans sub-millisecond bookkeeping up
#: to multi-minute windows.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1,
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
)


class Counter:
    """A monotonically increasing count.

    Args:
        name: dotted metric name (``"reid.invocations"``).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)


class Histogram:
    """A bucketed distribution of observed values.

    Tracks count, sum, min and max exactly, plus per-bucket counts for
    the configured upper bounds (cumulative-style, with an implicit
    final +inf bucket).

    Args:
        name: dotted metric name.
        bounds: strictly increasing bucket upper bounds.
    """

    __slots__ = (
        "name",
        "bounds",
        "bucket_counts",
        "count",
        "total",
        "min_value",
        "max_value",
    )

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bounds must be non-empty and increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Uses Prometheus-style linear interpolation inside the bucket the
        target rank lands in, with two exactness improvements the exact
        min/max tracking affords: the first bucket's lower edge is the
        observed minimum (not an assumed 0), the +inf bucket's upper
        edge is the observed maximum, and the result is clamped to
        ``[min_value, max_value]``.  ``0.0`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        if target <= 0:
            return self.min_value
        cumulative = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            lower = (
                self.min_value if index == 0 else self.bounds[index - 1]
            )
            upper = (
                self.max_value
                if index == len(self.bounds)
                else self.bounds[index]
            )
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min_value), self.max_value)
            cumulative += bucket_count
        return self.max_value

    def summary(self) -> dict[str, float]:
        """Count/sum/mean/min/max plus p50/p95/p99 as a flat dict."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def state_dict(self) -> dict:
        """Restorable/mergeable state (pure JSON; no infinities)."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": [int(c) for c in self.bucket_counts],
            "count": int(self.count),
            "sum": float(self.total),
            "min": self.min_value if self.count else None,
            "max": self.max_value if self.count else None,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        The parallel engine ships worker-local histogram states home in
        :class:`~repro.parallel.executor.WindowOutcome` payloads and
        folds them here in window-index order, so merged distributions
        are exact (bucket counts, sums, extremes — not just summaries)
        and worker-count independent.

        Raises:
            ValueError: the states were recorded with different bounds.
        """
        if tuple(float(b) for b in state["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge states with "
                f"different bounds ({state['bounds']} vs "
                f"{list(self.bounds)})"
            )
        for index, bucket_count in enumerate(state["bucket_counts"]):
            self.bucket_counts[index] += int(bucket_count)
        self.count += int(state["count"])
        self.total += float(state["sum"])
        if state["min"] is not None:
            self.min_value = min(self.min_value, float(state["min"]))
        if state["max"] is not None:
            self.max_value = max(self.max_value, float(state["max"]))


class MetricsRegistry:
    """A lazily-populated, insertion-ordered collection of instruments.

    One registry per run (pipeline, sweep, CLI invocation).  The
    snapshot/delta pair is what powers per-window reporting: snapshot
    the counters before a window, subtract afterwards.
    """

    def __init__(self) -> None:
        self._counters: OrderedDict[str, Counter] = OrderedDict()
        self._gauges: OrderedDict[str, Gauge] = OrderedDict()
        self._histograms: OrderedDict[str, Histogram] = OrderedDict()

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # ------------------------------------------------------------------
    # Recording shortcuts
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` in histogram ``name``."""
        self.histogram(name).observe(value)

    def value(self, name: str) -> float:
        """Current value of counter (or gauge) ``name``; 0.0 if absent."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0.0

    # ------------------------------------------------------------------
    # Snapshots and reporting
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> dict[str, float]:
        """Current counter values, for later :meth:`delta` computation."""
        return {name: c.value for name, c in self._counters.items()}

    def gauges_snapshot(self) -> dict[str, float]:
        """Current gauge values (for exporters and dashboards)."""
        return {name: g.value for name, g in self._gauges.items()}

    def histograms(self) -> dict[str, Histogram]:
        """The live histogram instruments, by name (insertion order)."""
        return dict(self._histograms)

    @staticmethod
    def delta(
        after: dict[str, float], before: dict[str, float]
    ) -> dict[str, float]:
        """Counter movement between two snapshots (zero entries dropped)."""
        moved: dict[str, float] = {}
        for name, value in after.items():
            change = value - before.get(name, 0.0)
            if change != 0:
                moved[name] = change
        return moved

    def merge_delta(self, delta: dict[str, float]) -> None:
        """Fold a counter delta into this registry.

        ``delta`` is the output of :meth:`delta` — or a worker-local
        registry's :meth:`counters_snapshot`, which is a delta by
        construction because the worker registry starts empty.  The
        parallel engine merges worker counters through this method in
        window-index order, so merged totals are worker-count
        independent down to float accumulation order.  Histogram
        movement travels separately through :meth:`histograms_snapshot`
        / :meth:`merge_histograms` (it is distribution state, not a
        scalar delta).
        """
        for name, amount in delta.items():
            if amount:
                self.counter(name).inc(amount)

    def histograms_snapshot(self) -> dict[str, dict]:
        """Every histogram's :meth:`Histogram.state_dict`, by name.

        The histogram half of the parallel reassembly seam: workers ship
        this home and the reassembly stage folds it into the run
        registry via :meth:`merge_histograms`, making ``merge_delta``-
        based reassembly exact for distributions too (they used to be
        dropped at the pool seam).
        """
        return {
            name: histogram.state_dict()
            for name, histogram in self._histograms.items()
        }

    def merge_histograms(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`histograms_snapshot` into this registry.

        Absent histograms are created with the shipped bounds, so the
        merged registry is exactly what a single-worker run would have
        recorded.
        """
        for name, state in snapshot.items():
            self.histogram(
                name, bounds=tuple(float(b) for b in state["bounds"])
            ).merge_state(state)

    def snapshot(self) -> dict[str, float]:
        """Every instrument flattened to ``name -> value`` floats.

        Histograms contribute ``<name>.count`` / ``.sum`` / ``.mean`` /
        ``.min`` / ``.max`` / ``.p50`` / ``.p95`` / ``.p99`` entries.
        """
        flat: dict[str, float] = self.counters_snapshot()
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, histogram in self._histograms.items():
            for stat, value in histogram.summary().items():
                flat[f"{name}.{stat}"] = value
        return flat

    def report(self) -> str:
        """Human-readable dump of every instrument, sorted by name."""
        lines = []
        for name in sorted(self._counters):
            lines.append(f"{name} = {self._counters[name].value:g}")
        for name in sorted(self._gauges):
            lines.append(f"{name} = {self._gauges[name].value:g} (gauge)")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            s = h.summary()
            lines.append(
                f"{name}: count={s['count']:g} sum={s['sum']:g} "
                f"mean={s['mean']:g} min={s['min']:g} max={s['max']:g} "
                f"p50={s['p50']:g} p95={s['p95']:g} p99={s['p99']:g}"
            )
        return "\n".join(lines)
