"""Lightweight wall-clock profiling hooks.

Unlike everything else in the telemetry package, the profiler measures
*real* time — it answers "where does the Python implementation spend its
wall-clock", which is orthogonal to the simulated cost the figures
report.  Wall-clock reads are therefore confined to this module (the
cost-path packages are lint-barred from them by REPRO002); decorated
functions in ``core``/``reid`` never touch a clock themselves.

The :func:`profiled` decorator instruments *methods of objects that
carry a ``telemetry`` attribute*: at call time it looks up
``self.telemetry`` and records the call on its profiler — no globals,
no registration (REPRO010).  When the object has no telemetry bound,
the call passes straight through with one attribute lookup of overhead.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


@dataclass
class FunctionStats:
    """Accumulated timing of one profiled function.

    Attributes:
        name: the profile label (function qualname by default).
        calls: invocation count.
        total_seconds: summed wall-clock time across calls.
        max_seconds: slowest single call.
    """

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average wall-clock seconds per call."""
        return self.total_seconds / self.calls if self.calls else 0.0


class Profiler:
    """Per-function wall-time accumulation with a top-N hotspot report."""

    def __init__(self) -> None:
        self._stats: dict[str, FunctionStats] = {}

    def record(self, name: str, seconds: float) -> None:
        """Account one call of ``name`` that took ``seconds``."""
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = FunctionStats(name)
        stats.calls += 1
        stats.total_seconds += seconds
        stats.max_seconds = max(stats.max_seconds, seconds)

    def hotspots(self, top: int = 10) -> list[FunctionStats]:
        """The ``top`` most expensive functions by total wall time."""
        ranked = sorted(
            self._stats.values(),
            key=lambda s: (-s.total_seconds, s.name),
        )
        return ranked[:top]

    def report(self, top: int = 10) -> str:
        """Render the hotspot table as plain text."""
        rows = self.hotspots(top)
        if not rows:
            return "no profiled calls recorded"
        lines = ["hotspots (wall time):"]
        for stats in rows:
            lines.append(
                f"  {stats.name}: {stats.calls} calls, "
                f"{stats.total_seconds * 1e3:.2f} ms total, "
                f"{stats.mean_seconds * 1e6:.1f} us/call"
            )
        return "\n".join(lines)


def profiled(fn: F | None = None, *, name: str | None = None) -> Callable:
    """Profile a method through its object's injected telemetry.

    Apply to methods of classes whose instances (optionally) carry a
    ``telemetry`` attribute holding a
    :class:`~repro.telemetry.facade.Telemetry`.  Calls are timed with
    ``time.perf_counter`` and recorded under ``name`` (the function's
    qualname by default); when ``self.telemetry`` is ``None`` or absent
    the wrapper is a passthrough.
    """

    def decorate(func: F) -> F:
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(self, *args: object, **kwargs: object) -> object:
            telemetry = getattr(self, "telemetry", None)
            if telemetry is None:
                return func(self, *args, **kwargs)
            start = time.perf_counter()
            try:
                return func(self, *args, **kwargs)
            finally:
                telemetry.profiler.record(
                    label, time.perf_counter() - start
                )

        return wrapper  # type: ignore[return-value]

    if fn is not None:
        return decorate(fn)
    return decorate
