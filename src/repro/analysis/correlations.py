"""Correlation of pair scores with spatial and temporal distances (§IV-C).

The paper keeps BetaInit's prior signal — the spatial distance ``DisS`` —
because it correlates with the true pair score (Pearson ≥ 0.3) while the
temporal distance ``DisT`` does not (< 0.1, footnote 4).  This module
reproduces the measurement on simulated data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.pairs import TrackPair, spatial_distance
from repro.core.scores import exact_normalized_score
from repro.reid import ReidScorer
from repro.track.base import Track


def pearson(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation coefficient, implemented from scratch.

    Raises:
        ValueError: on length mismatch or fewer than two points.

    Returns:
        r ∈ [−1, 1]; 0.0 when either variable is constant.
    """
    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def temporal_distance(track_a: Track, track_b: Track) -> float:
    """The paper's ``DisT``: frames between the earlier track's last BBox
    and the later track's first BBox (footnote 4)."""
    earlier, later = (
        (track_a, track_b)
        if track_a.first_frame <= track_b.first_frame
        else (track_b, track_a)
    )
    return float(later.first_frame - earlier.last_frame)


@dataclass(frozen=True)
class SignalCorrelations:
    """Correlations of the two candidate prior signals with pair scores.

    Attributes:
        spatial: Pearson r between ``DisS`` and the exact pair score.
        temporal: Pearson r between ``DisT`` and the exact pair score.
        n_pairs: sample size.
    """

    spatial: float
    temporal: float
    n_pairs: int


def pair_signal_correlations(
    pairs: list[TrackPair], scorer: ReidScorer
) -> SignalCorrelations:
    """Measure corr(DisS, score) and corr(DisT, score) over a pair set.

    Scores are exact (Definition 3.1), so this is an offline analysis,
    not part of the sampling loop.
    """
    if len(pairs) < 2:
        raise ValueError("need at least two pairs")
    scores = []
    spatial = []
    temporal = []
    for pair in pairs:
        scores.append(exact_normalized_score(pair, scorer))
        spatial.append(spatial_distance(pair.track_a, pair.track_b))
        temporal.append(temporal_distance(pair.track_a, pair.track_b))
    return SignalCorrelations(
        spatial=pearson(spatial, scores),
        temporal=pearson(temporal, scores),
        n_pairs=len(pairs),
    )
