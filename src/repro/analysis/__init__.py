"""Analysis utilities reproducing the paper's empirical justifications.

§IV-C motivates BetaInit with two measurements:

* the Pearson correlation between track-pair *scores* and *spatial*
  distances ``DisS`` is at least 0.3, while
* the correlation with *temporal* distances ``DisT`` is below 0.1
  (footnote 4), which is why BetaInit uses space and not time.

:mod:`repro.analysis.correlations` computes both on any prepared data.
"""

from repro.analysis.correlations import (
    pearson,
    temporal_distance,
    pair_signal_correlations,
)

__all__ = ["pearson", "temporal_distance", "pair_signal_correlations"]
