"""Legacy setup shim — keeps `pip install -e .` working offline
(environments without the `wheel` package fall back to setup.py develop)."""

from setuptools import setup

setup()
